// Unit tests for wivi::sim - humans, rooms, the simulated MIMO link, and
// the experiment runner's physical consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/core/nulling.hpp"
#include "src/sim/experiment.hpp"
#include "src/sim/human.hpp"
#include "src/sim/link.hpp"
#include "src/sim/room.hpp"

namespace wivi::sim {
namespace {

// --------------------------------------------------------------- Humans ---

TEST(Subjects, PoolIsDeterministicAndVaried) {
  for (int i = 0; i < kNumSubjects; ++i) {
    const SubjectParams a = subject(i);
    const SubjectParams b = subject(i);
    EXPECT_DOUBLE_EQ(a.torso_rcs, b.torso_rcs);
    EXPECT_GT(a.torso_rcs, 0.0);
  }
  EXPECT_NE(subject(0).torso_rcs, subject(6).torso_rcs);
  EXPECT_THROW((void)subject(8), InvalidArgument);
  EXPECT_THROW((void)subject(-1), InvalidArgument);
}

TEST(HumanBody, ScatterPointsIncludeTorsoAndLimbs) {
  const SubjectParams p = subject(0);
  const HumanBody body(p, rf::Trajectory::stationary({1, 2}, 5.0, 0.1), 42);
  const auto pts = body.scatter_points(1.0);
  ASSERT_EQ(pts.size(), static_cast<std::size_t>(p.num_limbs) + 1);
  EXPECT_DOUBLE_EQ(pts[0].rcs_m2, p.torso_rcs);  // torso first
  // Limbs live near the torso.
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LT(rf::distance(pts[i].pos, pts[0].pos), 0.6);
}

TEST(HumanBody, LimbsSwingMoreWhileWalking) {
  const SubjectParams p = subject(1);
  std::vector<rf::Vec2> line;
  for (int i = 0; i <= 500; ++i) line.push_back({0.01 * i, 0.0});  // 1 m/s
  const HumanBody walking(p, rf::Trajectory(line, 0.01), 7);
  const HumanBody standing(p, rf::Trajectory::stationary({0, 0}, 5.0, 0.01), 7);

  auto limb_excursion = [](const HumanBody& b) {
    // Peak-to-peak motion of limb 1 relative to torso over 2 s.
    double lo = 1e9;
    double hi = -1e9;
    for (double t = 1.0; t < 3.0; t += 0.01) {
      const auto pts = b.scatter_points(t);
      const double rel = (pts[1].pos - pts[0].pos).norm();
      lo = std::min(lo, rel);
      hi = std::max(hi, rel);
    }
    return hi - lo;
  };
  EXPECT_GT(limb_excursion(walking), 2.0 * limb_excursion(standing));
}

TEST(RandomWalk, StaysInsideArea) {
  Rng rng(3);
  const Rect area{-2.0, 2.0, 1.0, 4.0};
  const rf::Trajectory t = random_walk(area, 20.0, 0.01, 1.0, rng);
  for (double s = 0.0; s <= t.duration(); s += 0.05)
    EXPECT_TRUE(area.contains(t.position(s))) << "t = " << s;
}

TEST(RandomWalk, MovesAtRoughlyTheRequestedSpeed) {
  Rng rng(4);
  const Rect area{-3.0, 3.0, 1.0, 5.0};
  const rf::Trajectory t = random_walk(area, 30.0, 0.01, 1.0, rng);
  // Average moving speed (excluding pauses) is near 1 m/s.
  double dist = 0.0;
  double moving_time = 0.0;
  for (double s = 0.0; s + 0.1 <= t.duration(); s += 0.1) {
    const double step = rf::distance(t.position(s), t.position(s + 0.1));
    if (step > 0.01) {
      dist += step;
      moving_time += 0.1;
    }
  }
  ASSERT_GT(moving_time, 5.0);
  EXPECT_NEAR(dist / moving_time, 1.0, 0.35);
}

TEST(GestureTrajectory, ForwardStepCoversStepLength) {
  core::GestureProfile profile;
  const std::vector<core::GestureStep> steps = {{true, 1.0}};
  const rf::Trajectory t =
      gesture_trajectory({0, 5}, {0, -1}, steps, profile, 5.0, 0.01);
  EXPECT_NEAR(t.position(0.5).y, 5.0, 1e-9);  // before the step
  EXPECT_NEAR(t.position(1.0 + profile.step_duration_sec + 0.1).y,
              5.0 - profile.step_length_m, 1e-6);
}

TEST(GestureTrajectory, PeakSpeedMatchesProfile) {
  core::GestureProfile profile;
  const std::vector<core::GestureStep> steps = {{true, 0.5}};
  const rf::Trajectory t =
      gesture_trajectory({0, 5}, {0, -1}, steps, profile, 3.0, 0.005);
  double peak = 0.0;
  for (double s = 0.0; s <= 2.5; s += 0.01)
    peak = std::max(peak, t.velocity(s).norm());
  EXPECT_NEAR(peak, profile.peak_speed_mps(), 0.08);
}

TEST(GestureTrajectory, BackwardStepsAreSmaller) {
  // §7.5: "taking a step backward is naturally harder ... smaller steps".
  core::GestureProfile profile;
  const std::vector<core::GestureStep> fwd = {{true, 0.5}};
  const std::vector<core::GestureStep> bwd = {{false, 0.5}};
  const auto tf = gesture_trajectory({0, 5}, {0, -1}, fwd, profile, 3.0, 0.01);
  const auto tb = gesture_trajectory({0, 5}, {0, -1}, bwd, profile, 3.0, 0.01);
  const double fwd_len = std::abs(tf.position(2.9).y - 5.0);
  const double bwd_len = std::abs(tb.position(2.9).y - 5.0);
  EXPECT_LT(bwd_len, fwd_len);
  EXPECT_NEAR(bwd_len / fwd_len, profile.backward_step_scale, 1e-6);
}

// ---------------------------------------------------------------- Rooms ---

TEST(Rooms, PaperRoomDimensions) {
  EXPECT_DOUBLE_EQ(stata_conference_a().width_m, 7.0);   // §7.2: 7x4 m
  EXPECT_DOUBLE_EQ(stata_conference_a().depth_m, 4.0);
  EXPECT_DOUBLE_EQ(stata_conference_b().width_m, 11.0);  // §7.2: 11x7 m
  EXPECT_DOUBLE_EQ(stata_conference_b().depth_m, 7.0);
  EXPECT_EQ(stata_conference_a().wall_material, rf::Material::kHollowWall);
  EXPECT_EQ(fairchild_room().wall_material, rf::Material::kConcrete8in);
}

TEST(Scene, InteriorIsBehindTheWall) {
  Rng rng(5);
  Scene scene(stata_conference_a(), default_calibration(), rng);
  const Rect inside = scene.interior();
  EXPECT_GT(inside.ymin, scene.wall_y());
  EXPECT_LT(inside.width(), 7.0);
  EXPECT_TRUE(inside.contains({0.0, 2.0}));
}

TEST(Scene, HumansRegisterWithChannel) {
  Rng rng(6);
  Scene scene(stata_conference_a(), default_calibration(), rng);
  const cdouble before = scene.channel().moving_response(0, 1.0);
  EXPECT_DOUBLE_EQ(norm2(before), 0.0);
  scene.add_human(subject(0),
                  rf::Trajectory::stationary({0.5, 3.0}, 5.0, 0.1), 9);
  EXPECT_GT(norm2(scene.channel().moving_response(0, 1.0)), 0.0);
  EXPECT_EQ(scene.num_humans(), 1u);
}

TEST(Scene, WallFlashDominatesStaticReturn) {
  // The flash is the strongest static path (paper §4): removing the wall
  // from the material-free room drops the static power substantially.
  Rng rng_a(7);
  Scene with_wall(stata_conference_a(), default_calibration(), rng_a);
  Rng rng_b(7);
  Scene free_space(room_with_material(rf::Material::kFreeSpace),
                   default_calibration(), rng_b);
  const double p_wall = norm2(with_wall.channel().static_response(0));
  const double p_free = norm2(free_space.channel().static_response(0));
  EXPECT_GT(p_wall / p_free, 3.0);
}

// ----------------------------------------------------------------- Link ---

TEST(Link, FlashSaturatesAdcAtBoostedGainWithoutNulling) {
  // The paper's core premise: without nulling, boosting power rails the
  // converter (the flash effect); §4.1.2 says the boost is safe only after
  // nulling.
  Rng rng(8);
  Scene scene(stata_conference_a(), default_calibration(), rng);
  SimulatedMimoLink link(scene, rng.fork());
  const CVec x = link.modem().preamble();

  // Base gain: no saturation.
  (void)link.transceive(x, x);
  EXPECT_FALSE(link.last_rx_saturated());

  // +12 dB on both TX antennas, no precoding: saturates.
  link.set_tx_gain_db(hw::kPowerBoostDb);
  (void)link.transceive(x, x);
  EXPECT_TRUE(link.last_rx_saturated());
}

TEST(Link, ClockAdvancesPerSymbol) {
  Rng rng(9);
  Scene scene(stata_conference_a(), default_calibration(), rng);
  SimulatedMimoLink link(scene, rng.fork());
  const CVec x = link.modem().preamble();
  const double t0 = link.now();
  (void)link.transceive(x, x);
  EXPECT_NEAR(link.now() - t0, link.modem().symbol_duration_sec(), 1e-12);
  link.advance(0.5);
  EXPECT_NEAR(link.now() - t0, 0.5 + link.modem().symbol_duration_sec(), 1e-12);
  EXPECT_THROW(link.advance(-1.0), InvalidArgument);
}

TEST(Link, ChainResponseIsNearUnityAndDrifts) {
  Rng rng(10);
  Scene scene(stata_conference_a(), default_calibration(), rng);
  SimulatedMimoLink link(scene, rng.fork());
  const cdouble c_now = link.chain_response(0, 0.0);
  const cdouble c_later = link.chain_response(0, 10.0);
  EXPECT_NEAR(std::abs(c_now), 1.0, 0.1);
  EXPECT_GT(std::abs(c_later - c_now), 1e-5);  // drift is nonzero
  EXPECT_LT(std::abs(c_later - c_now), 0.2);   // but bounded
}

TEST(Link, ChannelEstimateMatchesTrueChannel) {
  // One sounding through the full PHY recovers the model's channel to
  // within noise/quantization.
  Rng rng(11);
  Scene scene(stata_conference_a(), default_calibration(), rng);
  SimulatedMimoLink link(scene, rng.fork());
  const phy::OfdmModem& modem = link.modem();
  const CVec x = modem.preamble();
  const CVec zero(static_cast<std::size_t>(modem.num_subcarriers()));

  CVec acc(x.size(), cdouble{0, 0});
  const int reps = 32;
  for (int i = 0; i < reps; ++i) {
    const CVec y = link.transceive(x, zero);
    const CVec h = modem.estimate_channel(y, x);
    for (std::size_t k = 0; k < h.size(); ++k) acc[k] += h[k];
  }
  const double gain = db_to_amp(link.tx_gain_db()) * db_to_amp(link.rx_gain_db());
  const cdouble est = modem.combine_subcarriers(acc) /
                      (static_cast<double>(reps) * gain);
  // Compare against the static channel at DC-ish (combine over used bins).
  CVec truth(x.size(), cdouble{0, 0});
  for (int k : modem.used_subcarriers())
    truth[static_cast<std::size_t>(k)] = scene.channel().static_response(
        0, modem.subcarrier_offset_hz(k));
  const cdouble expect = modem.combine_subcarriers(truth);
  EXPECT_LT(std::abs(est - expect) / std::abs(expect), 0.05);
}

// ----------------------------------------------------------- Experiment ---

TEST(Experiment, TraceHasRequestedShape) {
  Rng rng(12);
  Scene scene(stata_conference_a(), default_calibration(), rng);
  ExperimentRunner::Config cfg;
  cfg.trace_duration_sec = 2.0;
  ExperimentRunner runner(scene, cfg, rng.fork());
  const TraceResult trace = runner.run();
  EXPECT_EQ(trace.h.size(), static_cast<std::size_t>(2.0 * kChannelSampleRateHz));
  EXPECT_DOUBLE_EQ(trace.sample_rate_hz, kChannelSampleRateHz);
  EXPECT_GT(trace.t0, 0.0);  // nulling consumed link time first
}

TEST(Experiment, EmptyRoomTraceIsDcDominated) {
  // Nothing moves: the post-nulling stream is residual DC + noise; its
  // sample-to-sample variation is far below its mean level... and far below
  // the pre-null static power.
  Rng rng(13);
  Scene scene(stata_conference_a(), default_calibration(), rng);
  ExperimentRunner::Config cfg;
  cfg.trace_duration_sec = 3.0;
  ExperimentRunner runner(scene, cfg, rng.fork());
  const TraceResult trace = runner.run();
  EXPECT_GT(trace.effective_nulling_db, 25.0);
  EXPECT_LT(trace.effective_nulling_db, 60.0);
}

TEST(Experiment, MovingHumanRaisesTraceVariation) {
  // First-difference power isolates fast (human Doppler, ~16 Hz) variation
  // from the slow chain-drift wander of the DC residual.
  auto diff_power = [](const TraceResult& t) {
    double acc = 0.0;
    for (std::size_t i = 1; i < t.h.size(); ++i) acc += norm2(t.h[i] - t.h[i - 1]);
    return acc / static_cast<double>(t.h.size() - 1);
  };

  Rng rng_e(14);
  Scene empty(stata_conference_a(), default_calibration(), rng_e);
  ExperimentRunner::Config cfg;
  cfg.trace_duration_sec = 4.0;
  ExperimentRunner empty_runner(empty, cfg, rng_e.fork());

  Rng rng_h(14);
  Scene occupied(stata_conference_a(), default_calibration(), rng_h);
  // Deterministic radial pacing (toward/away from the device) just behind
  // the wall: strong, persistent Doppler.
  std::vector<rf::Vec2> zigzag;
  for (int i = 0; i <= 2000; ++i) {
    const double t = 0.01 * i;
    const double phase = std::fmod(t, 4.0);
    const double y = phase < 2.0 ? 2.0 + phase : 6.0 - phase;
    zigzag.push_back({0.3 * std::sin(0.5 * t), y});
  }
  occupied.add_human(subject(2), rf::Trajectory(zigzag, 0.01), rng_h());
  ExperimentRunner occupied_runner(occupied, cfg, rng_h.fork());

  const double p_empty = diff_power(empty_runner.run());
  const double p_occupied = diff_power(occupied_runner.run());
  EXPECT_GT(p_occupied, 3.0 * p_empty);
}

TEST(Experiment, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    Scene scene(stata_conference_a(), default_calibration(), rng);
    scene.add_human(subject(1),
                    random_walk(scene.interior(), 10.0, 0.01, 1.0, rng), rng());
    ExperimentRunner::Config cfg;
    cfg.trace_duration_sec = 1.0;
    ExperimentRunner runner(scene, cfg, rng.fork());
    return runner.run();
  };
  const TraceResult a = run_once(99);
  const TraceResult b = run_once(99);
  ASSERT_EQ(a.h.size(), b.h.size());
  for (std::size_t i = 0; i < a.h.size(); ++i) EXPECT_EQ(a.h[i], b.h[i]);
  EXPECT_DOUBLE_EQ(a.effective_nulling_db, b.effective_nulling_db);
}

TEST(Experiment, UnNulledPrecoderShowsTheFlash) {
  // Ablation hook: running with p = 0 (second antenna silent, no nulling)
  // leaves the full static channel in the trace.
  Rng rng(15);
  Scene scene(stata_conference_a(), default_calibration(), rng);
  ExperimentRunner::Config cfg;
  cfg.trace_duration_sec = 1.0;
  ExperimentRunner runner(scene, cfg, rng.fork());
  const CVec p(64, cdouble{0.0, 0.0});
  const TraceResult trace = runner.run_with_precoder(p);
  // Static residual ~ full static channel: effective nulling near 0 dB
  // (within a few dB because pre_null here came from a default Result).
  EXPECT_GT(mean_power(trace.h), 0.0);
}

}  // namespace
}  // namespace wivi::sim
