// Unit tests for wivi::phy - OFDM modem and channel estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/phy/ofdm.hpp"

namespace wivi::phy {
namespace {

TEST(Ofdm, DefaultsMatchPaperSection71) {
  const OfdmModem modem;
  EXPECT_EQ(modem.num_subcarriers(), 64);          // "64 subcarriers incl. DC"
  EXPECT_DOUBLE_EQ(modem.config().bandwidth_hz, 5e6);  // "reduced ... to 5 MHz"
}

TEST(Ofdm, UsedSubcarriersExcludeDcAndGuards) {
  const OfdmModem modem;
  for (int k : modem.used_subcarriers()) {
    EXPECT_NE(k, 0);                         // DC excluded
    EXPECT_GE(k, 1);
    EXPECT_LT(k, 64);
  }
  // Guard bins around mid-band (Nyquist edge) are excluded.
  const auto& used = modem.used_subcarriers();
  for (int k = 32 - modem.config().guard_carriers + 1; k < 32; ++k)
    EXPECT_EQ(std::count(used.begin(), used.end(), k), 0) << k;
}

TEST(Ofdm, SubcarrierOffsetSignedLayout) {
  const OfdmModem modem;
  EXPECT_DOUBLE_EQ(modem.subcarrier_offset_hz(0), 0.0);
  EXPECT_GT(modem.subcarrier_offset_hz(1), 0.0);
  EXPECT_LT(modem.subcarrier_offset_hz(63), 0.0);
  EXPECT_NEAR(modem.subcarrier_offset_hz(1), 5e6 / 64, 1e-6);
  EXPECT_NEAR(modem.subcarrier_offset_hz(63), -5e6 / 64, 1e-6);
}

TEST(Ofdm, ModulateDemodulateRoundTrip) {
  const OfdmModem modem;
  const CVec x = modem.preamble();
  const CVec time = modem.modulate(x);
  ASSERT_EQ(time.size(), static_cast<std::size_t>(modem.symbol_length()));
  const CVec back = modem.demodulate(time);
  for (std::size_t k = 0; k < x.size(); ++k)
    EXPECT_NEAR(std::abs(back[k] - x[k]), 0.0, 1e-10) << "bin " << k;
}

TEST(Ofdm, ModulatePreservesPower) {
  const OfdmModem modem;
  const CVec x = modem.preamble();
  const CVec time = modem.modulate(x);
  // Compare over the FFT body (skip the cyclic prefix).
  const CVec body(time.begin() + modem.config().cyclic_prefix, time.end());
  EXPECT_NEAR(mean_power(body), mean_power(x), 1e-9);
}

TEST(Ofdm, CyclicPrefixIsTailCopy) {
  const OfdmModem modem;
  const CVec time = modem.modulate(modem.preamble());
  const int cp = modem.config().cyclic_prefix;
  const int n = modem.num_subcarriers();
  for (int i = 0; i < cp; ++i)
    EXPECT_EQ(time[static_cast<std::size_t>(i)],
              time[static_cast<std::size_t>(n + i)]);
}

TEST(Ofdm, PreambleIsDeterministicPerSeed) {
  const OfdmModem modem;
  EXPECT_EQ(modem.preamble(1), modem.preamble(1));
  EXPECT_NE(modem.preamble(1), modem.preamble(2));
}

TEST(Ofdm, PreambleUnitPowerOnUsedBins) {
  const OfdmModem modem;
  const CVec p = modem.preamble();
  for (int k : modem.used_subcarriers())
    EXPECT_NEAR(norm2(p[static_cast<std::size_t>(k)]), 1.0, 1e-12);
  EXPECT_EQ(p[0], (cdouble{0.0, 0.0}));  // DC empty
}

TEST(Ofdm, ChannelEstimateRecoversFlatChannel) {
  const OfdmModem modem;
  const CVec x = modem.preamble();
  const cdouble h{0.3, -0.4};
  CVec y(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) y[k] = h * x[k];
  const CVec est = modem.estimate_channel(y, x);
  for (int k : modem.used_subcarriers())
    EXPECT_NEAR(std::abs(est[static_cast<std::size_t>(k)] - h), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(modem.combine_subcarriers(est) - h), 0.0, 1e-12);
}

TEST(Ofdm, CombineAveragesAcrossSubcarriersToReduceNoise) {
  // Paper §7.1: "channel measurements across the different subcarriers are
  // combined to improve the SNR."
  const OfdmModem modem;
  const CVec x = modem.preamble();
  Rng rng(33);
  const cdouble h{1.0, 0.0};
  const double noise_var = 0.01;
  double err_single = 0.0;
  double err_combined = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    CVec y(x.size());
    for (std::size_t k = 0; k < x.size(); ++k)
      y[k] = h * x[k] + rng.complex_gaussian(noise_var);
    const CVec est = modem.estimate_channel(y, x);
    const auto k0 = static_cast<std::size_t>(modem.used_subcarriers().front());
    err_single += norm2(est[k0] - h);
    err_combined += norm2(modem.combine_subcarriers(est) - h);
  }
  // Averaging ~52 bins cuts error variance by ~52x; allow slack.
  EXPECT_LT(err_combined, err_single / 20.0);
}

TEST(Ofdm, SymbolDurationFollowsBandwidth) {
  const OfdmModem modem;
  EXPECT_NEAR(modem.symbol_duration_sec(), 80.0 / 5e6, 1e-12);
}

TEST(Ofdm, RejectsBadConfig) {
  OfdmModem::Config bad;
  bad.num_subcarriers = 48;  // not a power of two
  EXPECT_THROW(OfdmModem{bad}, InvalidArgument);
  OfdmModem::Config bad_cp;
  bad_cp.cyclic_prefix = 64;
  EXPECT_THROW(OfdmModem{bad_cp}, InvalidArgument);
}

TEST(Ofdm, DemodulateRejectsWrongLength) {
  const OfdmModem modem;
  EXPECT_THROW((void)modem.demodulate(CVec(13)), InvalidArgument);
}

}  // namespace
}  // namespace wivi::phy
