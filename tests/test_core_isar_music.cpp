// Tests for the ISAR emulated array (Eq. 5.1) and smoothed MUSIC (Eq. 5.3)
// on synthetic channel streams with known ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/core/isar.hpp"
#include "src/core/music.hpp"
#include "src/core/tracker.hpp"
#include "src/dsp/peaks.hpp"

namespace wivi::core {
namespace {

/// Channel stream of a point target approaching the device at radial speed
/// vr (m/s): h[n] = amp * exp(+j 2 pi * 2 vr T n / lambda) (round trip
/// phase advance as the range closes).
CVec synthetic_mover(double vr, std::size_t n, const IsarConfig& cfg,
                     double amp = 1.0, double phase0 = 0.3) {
  CVec h(n);
  const double step = kTwoPi * 2.0 * vr * cfg.sample_period_sec / cfg.wavelength_m;
  for (std::size_t i = 0; i < n; ++i) {
    const double phi = phase0 + step * static_cast<double>(i);
    h[i] = amp * cdouble{std::cos(phi), std::sin(phi)};
  }
  return h;
}

double expected_angle_deg(double vr, const IsarConfig& cfg) {
  return std::asin(vr / cfg.assumed_speed_mps) * 180.0 / kPi;
}

// ---------------------------------------------------------------- ISAR ---

TEST(Isar, ElementSpacingIsRoundTripDistancePerSample) {
  IsarConfig cfg;
  // Delta = 2 v T (paper §5.1 footnote 2): 2 * 1 m/s * 3.2 ms = 6.4 mm.
  EXPECT_NEAR(element_spacing_m(cfg), 0.0064, 1e-9);
}

TEST(Isar, SteeringVectorUnitModulus) {
  const IsarConfig cfg;
  for (const auto& v : steering_vector(cfg, 37.0, 50))
    EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Isar, SteeringVectorAtZeroAngleIsAllOnes) {
  const IsarConfig cfg;
  for (const auto& v : steering_vector(cfg, 0.0, 20))
    EXPECT_NEAR(std::abs(v - cdouble{1.0, 0.0}), 0.0, 1e-12);
}

TEST(Isar, AngleGridSpansPlusMinus90) {
  const RVec grid = angle_grid_deg(1.0);
  EXPECT_EQ(grid.size(), 181u);
  EXPECT_DOUBLE_EQ(grid.front(), -90.0);
  EXPECT_NEAR(grid.back(), 90.0, 1e-9);
}

TEST(Isar, RejectsOutOfRangeAngle) {
  const IsarConfig cfg;
  EXPECT_THROW((void)steering_vector(cfg, 91.0, 8), InvalidArgument);
}

// Parameterized: a target at radial speed vr beamforms to asin(vr/v).
class IsarAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(IsarAngleSweep, BeamformPeakTracksRadialSpeed) {
  const double vr = GetParam();
  IsarConfig cfg;
  const CVec h = synthetic_mover(vr, 100, cfg);
  const RVec angles = angle_grid_deg(1.0);
  const RVec power = beamform_power(h, cfg, angles);
  const std::size_t peak = dsp::argmax(power);
  EXPECT_NEAR(angles[peak], expected_angle_deg(vr, cfg), 2.0)
      << "vr = " << vr;
}

INSTANTIATE_TEST_SUITE_P(RadialSpeeds, IsarAngleSweep,
                         ::testing::Values(-0.95, -0.7, -0.5, -0.25, 0.0, 0.25,
                                           0.5, 0.7, 0.95));

TEST(Isar, ApproachingTargetHasPositiveAngle) {
  // Sign semantics of §5.1: toward Wi-Vi = positive angle.
  IsarConfig cfg;
  const CVec h = synthetic_mover(+0.8, 100, cfg);
  const RVec angles = angle_grid_deg(1.0);
  const std::size_t peak = dsp::argmax(beamform_power(h, cfg, angles));
  EXPECT_GT(angles[peak], 0.0);
}

TEST(Isar, StaticResidualShowsAtZero) {
  IsarConfig cfg;
  const CVec h(100, cdouble{0.7, -0.2});  // pure DC (nulling residual)
  const RVec angles = angle_grid_deg(1.0);
  const std::size_t peak = dsp::argmax(beamform_power(h, cfg, angles));
  EXPECT_NEAR(angles[peak], 0.0, 1.0);
}

// --------------------------------------------------------------- MUSIC ---

TEST(Music, SmoothedCorrelationIsHermitianOfSubarraySize) {
  Rng rng(1);
  CVec h(100);
  for (auto& v : h) v = rng.complex_gaussian();
  MusicConfig cfg;
  cfg.subarray = 24;
  const SmoothedMusic music(cfg);
  const linalg::CMatrix r = music.smoothed_correlation(h);
  EXPECT_EQ(r.rows(), 24u);
  EXPECT_NEAR(r.hermitian_defect(), 0.0, 1e-10);
}

TEST(Music, ModelOrderSeparatesSignalFromNoiseFloor) {
  const SmoothedMusic music;
  // Two strong eigenvalues over a flat floor.
  RVec ev = {100.0, 40.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1};
  EXPECT_EQ(music.estimate_model_order(ev), 2);
  // All-noise: never returns 0 (the DC source always exists).
  RVec flat(8, 0.1);
  EXPECT_EQ(music.estimate_model_order(flat), 1);
}

TEST(Music, ModelOrderCappedByMaxSources) {
  MusicConfig cfg;
  cfg.max_sources = 3;
  const SmoothedMusic music(cfg);
  RVec ev = {100.0, 90.0, 80.0, 70.0, 60.0, 0.01, 0.01, 0.01};
  EXPECT_EQ(music.estimate_model_order(ev), 3);
}

TEST(Music, SingleMoverPeaksAtIsarAngle) {
  Rng rng(7);
  MusicConfig cfg;
  CVec h = synthetic_mover(0.5, 100, cfg.isar);
  for (auto& v : h) v += rng.complex_gaussian(1e-4);
  const SmoothedMusic music(cfg);
  const RVec angles = angle_grid_deg(1.0);
  const RVec spec = music.pseudospectrum(h, angles);
  EXPECT_NEAR(angles[dsp::argmax(spec)], 30.0, 3.0);
}

TEST(Music, ResolvesTwoCoherentMoversPlusDc) {
  // The §5.2 scenario: two humans (correlated reflections of the same
  // transmitted signal) plus the DC residual.
  Rng rng(11);
  MusicConfig cfg;
  const CVec m1 = synthetic_mover(+0.8, 100, cfg.isar, 1.0, 0.2);
  const CVec m2 = synthetic_mover(-0.45, 100, cfg.isar, 0.8, 1.9);
  CVec h(100);
  for (std::size_t i = 0; i < h.size(); ++i)
    h[i] = m1[i] + m2[i] + cdouble{0.6, 0.3} + rng.complex_gaussian(1e-4);

  int order = 0;
  const SmoothedMusic music(cfg);
  const RVec angles = angle_grid_deg(1.0);
  const RVec spec = music.pseudospectrum(h, angles, &order);
  EXPECT_GE(order, 3);  // two movers + DC

  // Find the three tallest, well-separated spectral peaks.
  RVec spec_db(spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) spec_db[i] = std::log10(spec[i]);
  const auto peaks = dsp::find_peaks(
      spec_db, {.min_height = -1e9, .min_distance = 8});
  ASSERT_GE(peaks.size(), 3u);
  // Collect peak angles sorted by spectral height.
  std::vector<std::pair<double, double>> by_height;  // (-value, angle)
  for (const auto& p : peaks) by_height.push_back({-p.value, angles[p.index]});
  std::sort(by_height.begin(), by_height.end());
  std::vector<double> top3 = {by_height[0].second, by_height[1].second,
                              by_height[2].second};
  std::sort(top3.begin(), top3.end());
  EXPECT_NEAR(top3[0], expected_angle_deg(-0.45, cfg.isar), 4.0);
  EXPECT_NEAR(top3[1], 0.0, 3.0);
  EXPECT_NEAR(top3[2], expected_angle_deg(0.8, cfg.isar), 4.0);
}

TEST(Music, SharperThanConventionalBeamforming) {
  // §5.2 footnote 6: MUSIC is a super-resolution technique; its peak is
  // narrower than the Eq. 5.1 beamformer's for the same data.
  Rng rng(5);
  MusicConfig cfg;
  CVec h = synthetic_mover(0.5, 100, cfg.isar);
  for (auto& v : h) v += rng.complex_gaussian(1e-5);
  const RVec angles = angle_grid_deg(1.0);
  const SmoothedMusic music(cfg);
  const RVec spec = music.pseudospectrum(h, angles);
  const RVec beam = beamform_power(h, cfg.isar, angles);

  auto half_power_width = [&](const RVec& s) {
    const std::size_t peak = dsp::argmax(s);
    const double half = s[peak] / 2.0;
    std::size_t lo = peak;
    std::size_t hi = peak;
    while (lo > 0 && s[lo] > half) --lo;
    while (hi + 1 < s.size() && s[hi] > half) ++hi;
    return hi - lo;
  };
  EXPECT_LT(half_power_width(spec), half_power_width(beam));
}

TEST(Music, RejectsWindowShorterThanSubarray) {
  MusicConfig cfg;
  cfg.subarray = 32;
  const SmoothedMusic music(cfg);
  EXPECT_THROW((void)music.smoothed_correlation(CVec(16)), InvalidArgument);
}

// ------------------------------------------------------------- Tracker ---

TEST(Tracker, ImageDimensionsFollowConfig) {
  Rng rng(3);
  MotionTracker::Config cfg;
  cfg.hop = 50;
  const MotionTracker tracker(cfg);
  CVec h = synthetic_mover(0.4, 1000, cfg.music.isar);
  for (auto& v : h) v += rng.complex_gaussian(1e-5);
  const AngleTimeImage img = tracker.process(h, 2.0);
  EXPECT_EQ(img.num_angles(), 181u);
  // Windows: floor((1000 - 100) / 50) + 1 = 19.
  EXPECT_EQ(img.num_times(), 19u);
  EXPECT_GT(img.times_sec.front(), 2.0);  // offset by half a window
}

TEST(Tracker, TracksChangingRadialSpeed) {
  // Speed ramps from +0.8 to -0.8 m/s; the dominant angle must swing from
  // positive to negative like the curved lines of Fig. 5-2(b).
  Rng rng(9);
  MotionTracker tracker;
  const IsarConfig isar;
  const std::size_t n = 2000;
  CVec h(n);
  double phase = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(n - 1);
    const double vr = 0.8 - 1.6 * frac;
    phase += kTwoPi * 2.0 * vr * isar.sample_period_sec / isar.wavelength_m;
    h[i] = cdouble{std::cos(phase), std::sin(phase)} + rng.complex_gaussian(1e-4);
  }
  const AngleTimeImage img = tracker.process(h);
  const RVec trace = tracker.dominant_angle_trace(img);
  ASSERT_GE(trace.size(), 10u);
  // Early columns positive (approaching), late columns negative (receding).
  EXPECT_GT(trace[1], 20.0);
  EXPECT_LT(trace[trace.size() - 2], -20.0);
}

TEST(Tracker, ColumnDbIsNonNegativeAndCapped) {
  Rng rng(13);
  MotionTracker tracker;
  CVec h = synthetic_mover(0.3, 300, tracker.config().music.isar);
  for (auto& v : h) v += rng.complex_gaussian(1e-5);
  const AngleTimeImage img = tracker.process(h);
  const RVec col = img.column_db(0, 60.0);
  for (double v : col) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 60.0);
  }
}

TEST(Tracker, RenderAsciiProducesGrid) {
  Rng rng(13);
  MotionTracker tracker;
  CVec h = synthetic_mover(0.3, 400, tracker.config().music.isar);
  for (auto& v : h) v += rng.complex_gaussian(1e-5);
  const AngleTimeImage img = tracker.process(h);
  const std::string art = render_ascii(img, 40, 21);
  EXPECT_GT(std::count(art.begin(), art.end(), '\n'), 20);
}

TEST(Tracker, RejectsTooShortStream) {
  const MotionTracker tracker;
  EXPECT_THROW((void)tracker.process(CVec(50)), InvalidArgument);
}

TEST(SlidingCorrelation, StaysDirectAccurateAcrossReanchorBoundary) {
  // The rank-one subtract/add chain re-anchors (full rebuild) once
  // kRebuildEvery updates accumulate; the streaming result must stay
  // within 1e-12 of the direct per-window computation on both sides of
  // that boundary, and the update counter must actually reset there.
  constexpr int kSubarray = 8;
  constexpr int kWindow = 24;
  constexpr std::size_t kHop = 3;  // 6 updates/step: incremental (S = 17)
  Rng rng(77);
  CVec h(static_cast<std::size_t>(kWindow) + kHop * 800);
  for (auto& v : h) v = rng.complex_gaussian();

  MusicConfig mc;
  mc.subarray = kSubarray;
  mc.max_sources = 4;  // validation: must leave noise eigenvectors at w'=8
  const SmoothedMusic music(mc);
  SlidingCorrelation sliding(kSubarray, kWindow);
  linalg::CMatrix r;
  linalg::CMatrix ref;

  bool saw_reanchor = false;
  long prev_updates = 0;
  for (std::size_t pos = 0;
       pos + static_cast<std::size_t>(kWindow) <= h.size(); pos += kHop) {
    sliding.advance_to(h, pos);
    if (sliding.updates_since_rebuild() < prev_updates) saw_reanchor = true;
    prev_updates = sliding.updates_since_rebuild();
    ASSERT_LE(prev_updates, SlidingCorrelation::kRebuildEvery);

    sliding.correlation_into(r);
    music.smoothed_correlation_into(
        CSpan(h).subspan(pos, static_cast<std::size_t>(kWindow)), ref);
    for (std::size_t i = 0; i < ref.rows(); ++i)
      for (std::size_t j = 0; j < ref.cols(); ++j)
        ASSERT_NEAR(std::abs(r(i, j) - ref(i, j)), 0.0, 1e-12)
            << "pos=" << pos << " (" << i << "," << j << ")";
  }
  // 800 steps x 6 updates = 4800 > kRebuildEvery: the boundary was crossed.
  EXPECT_TRUE(saw_reanchor);
}

}  // namespace
}  // namespace wivi::core
