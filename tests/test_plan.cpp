// wivi::plan shared-plan registry (ISSUE 9): hash-consing, key
// canonicalization, ARC eviction/resurrection/rebuild, concurrent
// acquisition, and bit-parity of registry-built artifacts against the
// direct builders. The last test is the headline acceptance check: a
// thousand same-config sessions trigger exactly one steering build.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/api/session.hpp"
#include "src/core/isar.hpp"
#include "src/core/music.hpp"
#include "src/dsp/fft.hpp"
#include "src/dsp/window.hpp"
#include "src/plan/registry.hpp"

namespace wivi {
namespace {

// ------------------------------------------------- local-registry helpers ---

struct DummyCtx {
  std::atomic<int>* builds = nullptr;
  int value = 0;
};

plan::Built build_dummy(void* raw) {
  auto* c = static_cast<DummyCtx*>(raw);
  if (c->builds != nullptr) c->builds->fetch_add(1, std::memory_order_relaxed);
  return {std::make_shared<const int>(c->value), sizeof(int)};
}

// Acquire the kOther artifact keyed by `id` from `reg`, building an int
// equal to `id` (and bumping `builds` when the builder actually runs).
std::shared_ptr<const int> acquire_dummy(plan::Registry& reg, std::uint64_t id,
                                         std::atomic<int>* builds = nullptr) {
  const std::uint64_t ints[1] = {id};
  const plan::KeyRef key{plan::Kind::kOther, ints, {}, {}};
  DummyCtx ctx{builds, static_cast<int>(id)};
  return std::static_pointer_cast<const int>(
      reg.acquire(key, build_dummy, &ctx));
}

// ----------------------------------------------------------- hash-consing ---

TEST(PlanRegistry, HashConsingReturnsTheSameHandle) {
  plan::Registry reg(8);
  std::atomic<int> builds{0};
  const auto a = acquire_dummy(reg, 42, &builds);
  const auto b = acquire_dummy(reg, 42, &builds);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(builds.load(), 1);
  const plan::Stats st = reg.stats();
  EXPECT_EQ(st.builds, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.resident_plans, 1u);
  EXPECT_EQ(st.resident_bytes, sizeof(int));
}

TEST(PlanRegistry, DistinctKeysGetDistinctArtifacts) {
  plan::Registry reg(8);
  const auto a = acquire_dummy(reg, 1);
  const auto b = acquire_dummy(reg, 2);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
}

TEST(PlanRegistry, KindSeparatesEqualParameterLists) {
  // The same integer payload under different kinds must not collide.
  plan::Registry reg(8);
  const std::uint64_t ints[1] = {64};
  DummyCtx ctx{nullptr, 7};
  const auto a = reg.acquire(plan::KeyRef{plan::Kind::kOther, ints, {}, {}},
                             build_dummy, &ctx);
  const auto b = reg.acquire(plan::KeyRef{plan::Kind::kAngleGrid, ints, {}, {}},
                             build_dummy, &ctx);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(reg.stats().builds, 2u);
}

TEST(PlanRegistry, HashKeyIsDeterministicAndSectionSensitive) {
  const std::uint64_t ints[2] = {3, 5};
  const double reals[1] = {1.25};
  const plan::KeyRef k1{plan::Kind::kSteering, ints, reals, {}};
  const plan::KeyRef k2{plan::Kind::kSteering, ints, reals, {}};
  EXPECT_EQ(plan::hash_key(k1), plan::hash_key(k2));
  // Moving an element between sections changes the key.
  const plan::KeyRef k3{plan::Kind::kSteering, ints, {}, reals};
  EXPECT_NE(plan::hash_key(k1), plan::hash_key(k3));
}

// ------------------------------------------------------- canonicalization ---

TEST(PlanRegistry, EquivalentSpeedPeriodFactoringsShareOneSteeringTable) {
  // The steering key carries the derived spacing 2vT: doubling the speed
  // while halving the sample period is the same emulated array, so both
  // configs must resolve to one shared table.
  const RVec angles = core::angle_grid_deg(1.0);
  core::IsarConfig a;
  a.assumed_speed_mps = 1.0;
  core::IsarConfig b = a;
  b.assumed_speed_mps = 2.0;
  b.sample_period_sec = a.sample_period_sec / 2.0;
  ASSERT_EQ(core::element_spacing_m(a), core::element_spacing_m(b));

  const auto ta = core::acquire_steering(a, angles, 32, true);
  const auto tb = core::acquire_steering(b, angles, 32, true);
  EXPECT_EQ(ta.get(), tb.get());
}

TEST(PlanRegistry, DifferentGeometryGetsADifferentSteeringTable) {
  const RVec angles = core::angle_grid_deg(1.0);
  core::IsarConfig a;
  core::IsarConfig b = a;
  b.assumed_speed_mps = a.assumed_speed_mps * 1.5;  // different spacing
  const auto ta = core::acquire_steering(a, angles, 32, true);
  const auto tb = core::acquire_steering(b, angles, 32, true);
  EXPECT_NE(ta.get(), tb.get());
}

// -------------------------------------------------------------- bit-parity ---

TEST(PlanRegistry, SteeringTableMatchesTheDirectSteeringVector) {
  // Registry-built rows must equal steering_vector() bit for bit — the
  // refactor moved ownership, not numerics.
  const core::IsarConfig cfg;
  const RVec angles = core::angle_grid_deg(5.0);
  const std::size_t m = 32;
  const auto table = core::acquire_steering(cfg, angles, m, /*unit_norm=*/false);
  ASSERT_EQ(table->num_angles(), angles.size());
  ASSERT_EQ(table->length(), m);
  for (std::size_t ai = 0; ai < angles.size(); ++ai) {
    const CVec ref = core::steering_vector(cfg, angles[ai], m);
    const cdouble* const row = table->row(ai);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(row[i].real(), ref[i].real());
      EXPECT_EQ(row[i].imag(), ref[i].imag());
    }
  }
}

TEST(PlanRegistry, SharedWindowMatchesMakeWindow) {
  const RVec direct = dsp::make_window(dsp::WindowType::kHann, 64, true);
  const auto shared = dsp::acquire_window(dsp::WindowType::kHann, 64, true);
  EXPECT_EQ(*shared, direct);
}

TEST(PlanRegistry, SharedAngleGridMatchesAngleGridDeg) {
  const RVec direct = core::angle_grid_deg(2.0);
  const auto shared = core::acquire_angle_grid(2.0);
  EXPECT_EQ(*shared, direct);
}

// ---------------------------------------------------------- ARC behaviour ---

TEST(PlanRegistry, EvictsWhenOverCapacityAndRebuildsTransparently) {
  plan::Registry reg(2);
  std::atomic<int> builds{0};
  // Drop the handles immediately so evicted artifacts actually die.
  for (std::uint64_t id = 0; id < 6; ++id) (void)acquire_dummy(reg, id, &builds);
  plan::Stats st = reg.stats();
  EXPECT_EQ(st.resident_plans, 2u);
  EXPECT_GE(st.evictions, 4u);
  EXPECT_EQ(builds.load(), 6);

  // Key 0 was evicted and its artifact destroyed: re-acquiring rebuilds,
  // and the value is right.
  const auto again = acquire_dummy(reg, 0, &builds);
  EXPECT_EQ(*again, 0);
  EXPECT_EQ(builds.load(), 7);
}

TEST(PlanRegistry, HandleSurvivesEvictionAndResurrects) {
  plan::Registry reg(2);
  std::atomic<int> builds{0};
  // Two frequent keys fill the frequency list (a second acquire promotes
  // each to T2), with 100 as its LRU.
  const auto held = acquire_dummy(reg, 100, &builds);
  (void)acquire_dummy(reg, 100, &builds);
  (void)acquire_dummy(reg, 200, &builds);
  (void)acquire_dummy(reg, 200, &builds);
  // Shrinking the bound demotes 100 to a ghost — the registry drops its
  // reference but remembers the key.
  reg.set_capacity(1);
  ASSERT_GE(reg.stats().evictions, 1u);
  ASSERT_EQ(reg.stats().resident_plans, 1u);

  // The held handle pins the artifact past eviction...
  EXPECT_EQ(*held, 100);
  const int builds_before = builds.load();
  // ...and re-acquiring resurrects the same object without rebuilding.
  const auto again = acquire_dummy(reg, 100, &builds);
  EXPECT_EQ(again.get(), held.get());
  EXPECT_EQ(builds.load(), builds_before);
  EXPECT_GE(reg.stats().resurrections, 1u);
}

TEST(PlanRegistry, FrequentKeySurvivesAOneShotScan) {
  // The ARC property the plain-LRU alternative lacks: a key hit
  // repeatedly (in T2) outlives a long scan of one-shot keys.
  plan::Registry reg(4);
  std::atomic<int> builds{0};
  (void)acquire_dummy(reg, 999, &builds);
  (void)acquire_dummy(reg, 999, &builds);  // promote to the frequency list
  for (std::uint64_t id = 0; id < 64; ++id) {
    (void)acquire_dummy(reg, id, &builds);
    (void)acquire_dummy(reg, 999, &builds);  // keep touching the hot key
  }
  const int before = builds.load();
  (void)acquire_dummy(reg, 999, &builds);
  EXPECT_EQ(builds.load(), before);  // still resident: no rebuild
}

TEST(PlanRegistry, SetCapacityTrimsResidents) {
  plan::Registry reg(8);
  for (std::uint64_t id = 0; id < 8; ++id) (void)acquire_dummy(reg, id);
  ASSERT_EQ(reg.stats().resident_plans, 8u);
  reg.set_capacity(3);
  EXPECT_EQ(reg.capacity(), 3u);
  EXPECT_LE(reg.stats().resident_plans, 3u);
  EXPECT_LE(reg.stats().resident_bytes, 3 * sizeof(int));
}

TEST(PlanRegistry, ClearDropsEverythingButHandlesStayValid) {
  plan::Registry reg(8);
  const auto held = acquire_dummy(reg, 5);
  reg.clear();
  const plan::Stats st = reg.stats();
  EXPECT_EQ(st.resident_plans, 0u);
  EXPECT_EQ(st.resident_bytes, 0u);
  EXPECT_EQ(st.hits + st.misses + st.builds, 0u);
  EXPECT_EQ(*held, 5);  // outstanding handles are unaffected
  // A fresh acquire after clear() builds from scratch.
  const auto again = acquire_dummy(reg, 5);
  EXPECT_EQ(*again, 5);
  EXPECT_EQ(reg.stats().builds, 1u);
}

TEST(PlanRegistry, ThrowingBuilderLeavesTheRegistryConsistent) {
  plan::Registry reg(4);
  const std::uint64_t ints[1] = {1};
  const plan::KeyRef key{plan::Kind::kOther, ints, {}, {}};
  const plan::BuildFn boom = [](void*) -> plan::Built {
    throw std::runtime_error("builder failed");
  };
  EXPECT_THROW((void)reg.acquire(key, boom, nullptr), std::runtime_error);
  EXPECT_EQ(reg.stats().resident_plans, 0u);
  // The same key still works with a working builder.
  std::atomic<int> builds{0};
  const auto ok = acquire_dummy(reg, 1, &builds);
  EXPECT_EQ(*ok, 1);
  EXPECT_EQ(builds.load(), 1);
}

// ------------------------------------------------------------ concurrency ---

TEST(PlanRegistry, ConcurrentAcquireBuildsExactlyOnce) {
  plan::Registry reg(8);
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const int>> got(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back(
          [&, t] { got[static_cast<std::size_t>(t)] = acquire_dummy(reg, 7, &builds); });
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(builds.load(), 1);
  for (const auto& h : got) {
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h.get(), got[0].get());
  }
}

TEST(PlanRegistry, ConcurrentMixedAcquiresStayConsistent) {
  plan::Registry reg(4);  // small enough to force eviction churn
  constexpr int kThreads = 8;
  std::atomic<bool> failed{false};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 200; ++i) {
          const auto id = static_cast<std::uint64_t>((t + i) % 12);
          const auto h = acquire_dummy(reg, id);
          if (h == nullptr || *h != static_cast<int>(id)) failed = true;
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_LE(reg.stats().resident_plans, 4u);
}

// ------------------------------------------- end-to-end session acceptance ---

TEST(PlanRegistry, ThousandSessionsShareOneSetOfPlans) {
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  // One warmup session makes every artifact the spec needs resident.
  const auto warmup = std::make_unique<api::Session>(spec);

  const plan::Stats before = plan::registry().stats();
  std::vector<std::unique_ptr<api::Session>> sessions;
  sessions.reserve(1000);
  for (int i = 0; i < 1000; ++i)
    sessions.push_back(std::make_unique<api::Session>(spec));
  const plan::Stats after = plan::registry().stats();

  // Not a single plan was built again; every session hit the shared set.
  EXPECT_EQ(after.builds, before.builds);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GE(after.hits - before.hits, 1000u);
}

}  // namespace
}  // namespace wivi
