// rt::Engine failure handling (DESIGN.md §9): the liveness watchdog
// (advisory kStalled, fatal kTimeout — including the never-fed-session
// case), bounded-retry RestartPolicy recovery, InputGuard rejection
// accounting inside the engine, the overload degrade/restore ladder, and
// drop-count plumbing into terminal events. Timing-sensitive tests use
// generous deadlines and bounded loops so they stay robust under
// sanitizers and loaded CI machines.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "src/api/session.hpp"
#include "src/fault/fault.hpp"
#include "src/rt/engine.hpp"
#include "src/sim/synthetic.hpp"

namespace wivi::rt {
namespace {

constexpr std::size_t kChunk = 64;

api::PipelineSpec count_spec() {
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  spec.count = api::CountStage{};
  return spec;
}

void feed_all(Engine& engine, SessionId id, const CVec& trace) {
  for (std::size_t pos = 0; pos < trace.size(); pos += kChunk) {
    const std::size_t len = std::min(kChunk, trace.size() - pos);
    engine.offer(id, CVec(trace.begin() + static_cast<std::ptrdiff_t>(pos),
                          trace.begin() + static_cast<std::ptrdiff_t>(pos + len)));
  }
}

std::vector<Event> events_of(Engine& engine, SessionId id) {
  std::vector<Event> all;
  engine.poll(all);
  std::vector<Event> mine;
  for (Event& e : all)
    if (e.session == id) mine.push_back(std::move(e));
  return mine;
}

// ------------------------------------------------------------- watchdog ---

TEST(Watchdog, NeverFedSessionResolvesWithTypedTimeout) {
  // A session that is opened but never offered a chunk and never closed
  // used to hang drain() forever; with a fatal watchdog it must resolve
  // on its own with a terminal typed kError(kTimeout).
  Engine::Config ec;
  ec.num_threads = 2;
  Engine engine(ec);

  IngestConfig ingest;
  ingest.watchdog.stall_timeout_sec = 0.05;
  ingest.watchdog.timeout_is_fatal = true;
  const SessionId id = engine.open_session(count_spec(), std::move(ingest));

  engine.drain();  // must return — no offer(), no close_session()

  const std::vector<Event> events = events_of(engine, id);
  ASSERT_FALSE(events.empty());
  const Event& last = events.back();
  EXPECT_EQ(last.type, Event::Type::kError);
  EXPECT_EQ(last.code, ErrorCode::kTimeout);
  // The advisory fired on the way down (silence passed 1x the deadline
  // before it passed 2x).
  const bool stalled =
      std::any_of(events.begin(), events.end(), [](const Event& e) {
        return e.type == Event::Type::kStalled;
      });
  EXPECT_TRUE(stalled);
  const auto st = engine.stats(id);
  EXPECT_TRUE(st.finished);
  EXPECT_FALSE(st.closed);
  // A dead session swallows late offers as drops instead of erroring.
  EXPECT_FALSE(engine.offer(id, CVec(kChunk, cdouble(1.0, 0.0))));
}

TEST(Watchdog, AdvisoryStallIsOneShotAndTheSessionFinishesHealthy) {
  Engine::Config ec;
  ec.num_threads = 2;
  Engine engine(ec);

  IngestConfig ingest;
  ingest.backpressure = Backpressure::kBlock;
  ingest.watchdog.stall_timeout_sec = 0.08;
  ingest.watchdog.timeout_is_fatal = false;  // advise, never kill
  const SessionId id = engine.open_session(count_spec(), std::move(ingest));

  const CVec trace = sim::synthetic_mover_trace(2048, 21, 0.4);
  const std::size_t half = (trace.size() / 2 / kChunk) * kChunk;
  for (std::size_t pos = 0; pos < half; pos += kChunk)
    engine.offer(id, CVec(trace.begin() + static_cast<std::ptrdiff_t>(pos),
                          trace.begin() + static_cast<std::ptrdiff_t>(pos + kChunk)));

  // Go silent until the watchdog notices (the advisory needs the worker
  // to find the ring empty, so under a sanitizer the backlog must drain
  // first — poll instead of sleeping a fixed amount), then well past 2x
  // the deadline: non-fatal means the watchdog must only ever advise.
  bool stalled = false;
  for (int spin = 0; spin < 60000 && !stalled; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stalled = engine.stats(id).stalled;
  }
  ASSERT_TRUE(stalled) << "the advisory never fired";
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  for (std::size_t pos = half; pos < trace.size(); pos += kChunk) {
    const std::size_t len = std::min(kChunk, trace.size() - pos);
    engine.offer(id, CVec(trace.begin() + static_cast<std::ptrdiff_t>(pos),
                          trace.begin() + static_cast<std::ptrdiff_t>(pos + len)));
  }
  engine.close_session(id);
  engine.drain();

  const std::vector<Event> events = events_of(engine, id);
  const auto stall_count = std::count_if(
      events.begin(), events.end(),
      [](const Event& e) { return e.type == Event::Type::kStalled; });
  EXPECT_EQ(stall_count, 1) << "kStalled must be one-shot per silence";
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, Event::Type::kFinished);

  // The stall was advisory only: the output is bit-identical to an
  // uninterrupted standalone run over the same trace.
  api::Session reference(count_spec());
  reference.run(trace);
  EXPECT_EQ(engine.tracker(id).image().columns, reference.image().columns);
  EXPECT_EQ(engine.pipeline(id).spatial_variance(),
            reference.spatial_variance());
}

// -------------------------------------------------------------- restart ---

TEST(Restart, MidTraceFailureRestartsAndEmitsRecovered) {
  Engine::Config ec;
  ec.num_threads = 2;
  Engine engine(ec);

  IngestConfig ingest;
  ingest.backpressure = Backpressure::kBlock;
  ingest.fault_hook = fault::throw_hook({5});
  ingest.restart.max_restarts = 1;
  const SessionId id = engine.open_session(count_spec(), std::move(ingest));

  const CVec trace = sim::synthetic_mover_trace(1536, 23, 0.4);
  feed_all(engine, id, trace);
  engine.close_session(id);
  engine.drain();

  // Event order: ... kError(kStageFailure) -> kRecovered -> ... kFinished.
  const std::vector<Event> events = events_of(engine, id);
  std::size_t i_error = events.size();
  std::size_t i_recovered = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == Event::Type::kError && i_error == events.size())
      i_error = i;
    if (events[i].type == Event::Type::kRecovered) i_recovered = i;
  }
  ASSERT_LT(i_error, events.size()) << "the injected failure must surface";
  ASSERT_LT(i_recovered, events.size());
  EXPECT_LT(i_error, i_recovered) << "kRecovered follows the kError";
  EXPECT_EQ(events[i_error].code, ErrorCode::kStageFailure);
  EXPECT_EQ(events[i_recovered].code, ErrorCode::kStageFailure);
  EXPECT_EQ(events[i_recovered].restarts, 1);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, Event::Type::kFinished);

  const auto st = engine.stats(id);
  EXPECT_TRUE(st.finished);
  EXPECT_EQ(st.restarts, 1);
  // The restarted pipeline kept consuming the stream: column accounting
  // stays monotone across the re-arm (columns from both incarnations).
  EXPECT_GT(st.columns_out, 0u);
}

TEST(Restart, ExhaustedRestartsAreTerminal) {
  Engine::Config ec;
  ec.num_threads = 2;
  Engine engine(ec);

  IngestConfig ingest;
  ingest.backpressure = Backpressure::kBlock;
  // The hook's counter spans restarts, so pushes 0, 1 and 2 each kill a
  // pipeline incarnation: failure -> restart -> failure -> dead.
  ingest.fault_hook = fault::throw_hook({0, 1, 2});
  ingest.restart.max_restarts = 1;
  const SessionId id = engine.open_session(count_spec(), std::move(ingest));

  feed_all(engine, id, sim::synthetic_mover_trace(1024, 29, 0.4));
  // The fatal throw lands asynchronously in a worker; drain() refuses
  // unresolved never-closed sessions, so wait for the death first
  // (finished-by-failure: no close_session() needed).
  for (int spin = 0; spin < 20000 && !engine.stats(id).finished; ++spin)
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  ASSERT_TRUE(engine.stats(id).finished);
  engine.drain();

  const std::vector<Event> events = events_of(engine, id);
  const auto recovered = std::count_if(
      events.begin(), events.end(),
      [](const Event& e) { return e.type == Event::Type::kRecovered; });
  EXPECT_EQ(recovered, 1) << "exactly max_restarts recoveries";
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, Event::Type::kError);
  EXPECT_EQ(events.back().code, ErrorCode::kStageFailure);
  const bool finished_event =
      std::any_of(events.begin(), events.end(), [](const Event& e) {
        return e.type == Event::Type::kFinished;
      });
  EXPECT_FALSE(finished_event) << "a dead session must not finish healthy";

  const auto st = engine.stats(id);
  EXPECT_TRUE(st.finished);
  EXPECT_EQ(st.restarts, 1);
  EXPECT_FALSE(engine.offer(id, CVec(kChunk, cdouble(1.0, 0.0))));
}

// ----------------------------------------------------- input rejection ---

TEST(InputRejection, MalformedChunkIsCountedAndDoesNotPerturbTheStream) {
  Engine::Config ec;
  ec.num_threads = 2;
  Engine engine(ec);

  IngestConfig ingest;
  ingest.backpressure = Backpressure::kBlock;
  const SessionId id = engine.open_session(count_spec(), std::move(ingest));

  const CVec trace = sim::synthetic_mover_trace(1536, 31, 0.4);
  CVec bad(48, cdouble(1.0, 0.0));
  bad[17] = cdouble(std::numeric_limits<double>::quiet_NaN(), 0.0);

  std::size_t sent = 0;
  for (std::size_t pos = 0; pos < trace.size(); pos += kChunk) {
    if (sent++ == 7) engine.offer(id, CVec(bad));  // mid-stream poison
    const std::size_t len = std::min(kChunk, trace.size() - pos);
    engine.offer(id, CVec(trace.begin() + static_cast<std::ptrdiff_t>(pos),
                          trace.begin() + static_cast<std::ptrdiff_t>(pos + len)));
  }
  engine.close_session(id);
  engine.drain();

  const auto st = engine.stats(id);
  EXPECT_TRUE(st.finished);
  EXPECT_EQ(st.chunks_rejected, 1u);
  EXPECT_EQ(st.samples_rejected, bad.size());
  EXPECT_EQ(st.restarts, 0) << "a rejection must not burn a restart";

  const std::vector<Event> events = events_of(engine, id);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, Event::Type::kFinished);
  EXPECT_EQ(events.back().chunks_rejected, 1u);

  // Conservation: every offered sample is seen, dropped, or rejected.
  EXPECT_EQ(engine.pipeline(id).samples_seen(),
            st.samples_in - st.samples_dropped - st.samples_rejected);

  // The rejected chunk was a pure no-op on the pipeline.
  api::Session reference(count_spec());
  reference.run(trace);
  EXPECT_EQ(engine.tracker(id).image().columns, reference.image().columns);
  EXPECT_EQ(engine.pipeline(id).spatial_variance(),
            reference.spatial_variance());
}

// -------------------------------------------------------------- overload ---

TEST(Overload, LadderDegradesUnderDropsAndRestoresAfterQuiet) {
  Engine::Config ec;
  ec.num_threads = 1;  // one worker makes the ring easy to overwhelm
  Engine engine(ec);

  IngestConfig ingest;
  ingest.ring_capacity = 1;
  ingest.backpressure = Backpressure::kDropNewest;
  ingest.overload.degrade = true;
  ingest.overload.degrade_after_drops = 1;
  ingest.overload.degraded_fidelity = 4;
  ingest.overload.restore_after_chunks = 4;
  const SessionId id = engine.open_session(count_spec(), std::move(ingest));

  const CVec trace = sim::synthetic_mover_trace(8192, 37, 0.4);
  const auto chunk_at = [&](std::size_t i) {
    const std::size_t pos = (i * kChunk) % (trace.size() - kChunk);
    return CVec(trace.begin() + static_cast<std::ptrdiff_t>(pos),
                trace.begin() + static_cast<std::ptrdiff_t>(pos + kChunk));
  };

  // Phase 1: flood a depth-1 ring until the ladder trips (bounded loop —
  // under a sanitizer the worker is slow, so this trips almost at once).
  std::size_t i = 0;
  bool degraded = false;
  for (; i < 200000 && !degraded; ++i) {
    engine.offer(id, chunk_at(i));
    degraded = engine.stats(id).fidelity > 1;
  }
  ASSERT_TRUE(degraded) << "the overload ladder never tripped";
  EXPECT_EQ(engine.stats(id).fidelity, 4);
  EXPECT_GT(engine.stats(id).chunks_dropped, 0u);

  // Phase 2: slow to a trickle until the hysteresis restores fidelity.
  // The pace adapts: whenever a chunk still dropped, double the gap —
  // under a sanitizer a chunk takes far longer than on bare metal, and
  // a fixed pace would keep flooding the depth-1 ring forever.
  bool restored = false;
  std::int64_t gap_ms = 2;
  std::uint64_t last_drops = engine.stats(id).chunks_dropped;
  for (std::size_t j = 0; j < 600 && !restored; ++j) {
    engine.offer(id, chunk_at(i + j));
    std::this_thread::sleep_for(std::chrono::milliseconds(gap_ms));
    const auto st = engine.stats(id);
    if (st.chunks_dropped > last_drops) {
      last_drops = st.chunks_dropped;
      gap_ms = std::min<std::int64_t>(gap_ms * 2, 1000);
    }
    restored = st.fidelity == 1;
  }
  EXPECT_TRUE(restored) << "full fidelity never came back";

  engine.close_session(id);
  engine.drain();

  // Both transitions were announced, in order, with the right payloads.
  const std::vector<Event> events = events_of(engine, id);
  std::size_t i_down = events.size();
  std::size_t i_up = events.size();
  for (std::size_t k = 0; k < events.size(); ++k) {
    if (events[k].type != Event::Type::kOverload) continue;
    if (events[k].degraded && i_down == events.size()) i_down = k;
    if (!events[k].degraded) i_up = k;
  }
  ASSERT_LT(i_down, events.size());
  ASSERT_LT(i_up, events.size());
  EXPECT_LT(i_down, i_up);
  EXPECT_EQ(events[i_down].fidelity, 4);
  EXPECT_GT(events[i_down].chunks_dropped, 0u);
  EXPECT_EQ(events[i_up].fidelity, 1);
}

TEST(Overload, FinishedEventCarriesTheDropCounters) {
  Engine::Config ec;
  ec.num_threads = 1;
  Engine engine(ec);

  IngestConfig ingest;
  ingest.ring_capacity = 1;
  ingest.backpressure = Backpressure::kDropNewest;
  const SessionId id = engine.open_session(count_spec(), std::move(ingest));

  // Flood so some chunks are guaranteed to drop.
  const CVec trace = sim::synthetic_mover_trace(4096, 41, 0.4);
  feed_all(engine, id, trace);
  engine.close_session(id);
  engine.drain();

  const auto st = engine.stats(id);
  EXPECT_GT(st.chunks_dropped, 0u) << "flooding a depth-1 ring must drop";
  const std::vector<Event> events = events_of(engine, id);
  ASSERT_FALSE(events.empty());
  const Event& fin = events.back();
  ASSERT_EQ(fin.type, Event::Type::kFinished);
  EXPECT_EQ(fin.chunks_dropped, st.chunks_dropped);
  EXPECT_EQ(fin.samples_dropped, st.samples_dropped);
  EXPECT_EQ(engine.pipeline(id).samples_seen(),
            st.samples_in - st.samples_dropped - st.samples_rejected);
}

// ------------------------------------------- degraded-fidelity imaging ---

TEST(Degradation, CoarseColumnsKeepTheImageShapeInvariant) {
  api::PipelineSpec spec = count_spec();
  api::Session full(spec);
  api::Session coarse(spec);
  coarse.set_fidelity(4);

  const CVec trace = sim::synthetic_mover_trace(1536, 43, 0.4);
  full.run(trace);
  coarse.run(trace);

  const auto& a = full.image();
  const auto& b = coarse.image();
  ASSERT_EQ(b.num_times(), a.num_times());
  ASSERT_EQ(b.num_angles(), a.num_angles());
  for (std::size_t t = 0; t < b.num_times(); ++t) {
    ASSERT_EQ(b.columns[t].size(), a.columns[t].size()) << "column " << t;
    // The decimated grid is anchored at both ends of the angle axis, so
    // the endpoints are exact pseudospectrum evaluations, not lerps.
    EXPECT_EQ(b.columns[t].front(), a.columns[t].front()) << "column " << t;
    EXPECT_EQ(b.columns[t].back(), a.columns[t].back()) << "column " << t;
    for (double v : b.columns[t]) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(coarse.tracker().degraded_columns(), b.num_times());
  EXPECT_EQ(full.tracker().degraded_columns(), 0u);
}

TEST(Degradation, RestoringFidelityMidStreamIsBitExactFromThereOn) {
  // Decimation only affects how a column is *evaluated*, never the
  // tracker's sliding state — so after set_fidelity(1), every further
  // column must be bit-identical to a session that never degraded.
  api::PipelineSpec spec = count_spec();
  api::Session full(spec);
  api::Session toggled(spec);
  toggled.set_fidelity(3);

  const CVec trace = sim::synthetic_mover_trace(2048, 47, 0.4);
  const std::size_t half = trace.size() / 2;
  full.push(CSpan(trace).subspan(0, half));
  toggled.push(CSpan(trace).subspan(0, half));
  const std::size_t switch_col = toggled.columns_seen();
  EXPECT_GT(switch_col, 0u) << "test needs columns on both sides";

  toggled.set_fidelity(1);
  EXPECT_EQ(toggled.fidelity(), 1);
  full.push(CSpan(trace).subspan(half));
  toggled.push(CSpan(trace).subspan(half));
  full.finish();
  toggled.finish();

  const auto& a = full.image();
  const auto& b = toggled.image();
  ASSERT_EQ(b.num_times(), a.num_times());
  ASSERT_GT(a.num_times(), switch_col);
  for (std::size_t t = switch_col; t < a.num_times(); ++t)
    EXPECT_EQ(b.columns[t], a.columns[t]) << "post-restore column " << t;
  EXPECT_EQ(toggled.tracker().degraded_columns(), switch_col);
}

}  // namespace
}  // namespace wivi::rt
