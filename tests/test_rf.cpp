// Unit tests for wivi::rf - geometry, materials (paper Table 4.1),
// antennas, propagation, channel model, noise.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/rf/antenna.hpp"
#include "src/rf/channel.hpp"
#include "src/rf/geometry.hpp"
#include "src/rf/materials.hpp"
#include "src/rf/noise.hpp"
#include "src/rf/propagation.hpp"

namespace wivi::rf {
namespace {

// ------------------------------------------------------------ Geometry ---

TEST(Geometry, VectorBasics) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.normalized().norm(), 1.0);
  EXPECT_DOUBLE_EQ(a.dot({1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, a), 5.0);
}

TEST(Geometry, ZeroVectorNormalizesToZero) {
  EXPECT_DOUBLE_EQ(Vec2{}.normalized().norm(), 0.0);
}

TEST(Geometry, SegmentsIntersectCross) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(Geometry, SegmentsTouchingEndpointIntersect) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(Geometry, TrajectoryInterpolatesLinearly) {
  const Trajectory t({{0, 0}, {1, 0}, {1, 1}}, 1.0);
  EXPECT_DOUBLE_EQ(t.duration(), 2.0);
  EXPECT_DOUBLE_EQ(t.position(0.5).x, 0.5);
  EXPECT_DOUBLE_EQ(t.position(1.5).y, 0.5);
  // Clamped outside [0, duration].
  EXPECT_DOUBLE_EQ(t.position(-1.0).x, 0.0);
  EXPECT_DOUBLE_EQ(t.position(99.0).y, 1.0);
}

TEST(Geometry, TrajectoryVelocityMagnitude) {
  // Constant 2 m/s along +x sampled at 10 Hz.
  std::vector<Vec2> pts;
  for (int i = 0; i <= 20; ++i) pts.push_back({0.2 * i, 0.0});
  const Trajectory t(pts, 0.1);
  EXPECT_NEAR(t.velocity(1.0).x, 2.0, 1e-9);
  EXPECT_NEAR(t.velocity(1.0).y, 0.0, 1e-12);
}

TEST(Geometry, RadialSpeedSignConvention) {
  // Moving along +x toward an observer at (10, 0): approaching = positive.
  std::vector<Vec2> pts;
  for (int i = 0; i <= 10; ++i) pts.push_back({0.1 * i, 0.0});
  const Trajectory t(pts, 0.1);
  EXPECT_GT(t.radial_speed_toward({10.0, 0.0}, 0.5), 0.9);
  EXPECT_LT(t.radial_speed_toward({-10.0, 0.0}, 0.5), -0.9);
}

TEST(Geometry, StationaryTrajectoryHasZeroVelocity) {
  const Trajectory t = Trajectory::stationary({1, 2}, 5.0, 0.01);
  EXPECT_DOUBLE_EQ(t.velocity(2.5).norm(), 0.0);
  EXPECT_DOUBLE_EQ(t.position(3.0).x, 1.0);
}

// ----------------------------------------------------------- Materials ---

TEST(Materials, Table41ValuesAreVerbatim) {
  // Paper Table 4.1: one-way attenuation at 2.4 GHz.
  EXPECT_DOUBLE_EQ(one_way_attenuation_db(Material::kGlass), 3.0);
  EXPECT_DOUBLE_EQ(one_way_attenuation_db(Material::kSolidWoodDoor), 6.0);
  EXPECT_DOUBLE_EQ(one_way_attenuation_db(Material::kHollowWall), 9.0);
  EXPECT_DOUBLE_EQ(one_way_attenuation_db(Material::kConcrete18in), 18.0);
  EXPECT_DOUBLE_EQ(one_way_attenuation_db(Material::kReinforcedConcrete), 40.0);
  EXPECT_DOUBLE_EQ(one_way_attenuation_db(Material::kFreeSpace), 0.0);
}

TEST(Materials, TwoWayDoublesOneWay) {
  // "through-wall systems require traversing the obstacle twice" (§4).
  for (const auto& row : material_table())
    EXPECT_DOUBLE_EQ(two_way_attenuation_db(row.material),
                     2.0 * row.one_way_attenuation_db);
}

TEST(Materials, OrderingMatchesDensity) {
  EXPECT_LT(one_way_attenuation_db(Material::kGlass),
            one_way_attenuation_db(Material::kSolidWoodDoor));
  EXPECT_LT(one_way_attenuation_db(Material::kSolidWoodDoor),
            one_way_attenuation_db(Material::kHollowWall));
  EXPECT_LT(one_way_attenuation_db(Material::kHollowWall),
            one_way_attenuation_db(Material::kConcrete8in));
  EXPECT_LT(one_way_attenuation_db(Material::kConcrete8in),
            one_way_attenuation_db(Material::kConcrete18in));
  EXPECT_LT(one_way_attenuation_db(Material::kConcrete18in),
            one_way_attenuation_db(Material::kReinforcedConcrete));
}

// ------------------------------------------------------------- Antenna ---

TEST(Antenna, IsotropicGainIsZeroDbiEverywhere) {
  const Antenna a = Antenna::isotropic({0, 0});
  EXPECT_DOUBLE_EQ(a.gain_dbi_toward({1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(a.gain_dbi_toward({-3, 7}), 0.0);
}

TEST(Antenna, DirectionalBoresightGain) {
  const Antenna a = Antenna::directional({0, 0}, {0, 1}, 6.0);
  EXPECT_NEAR(a.gain_dbi_toward({0, 5}), 6.0, 1e-9);
}

TEST(Antenna, DirectionalPatternRollsOff) {
  const Antenna a = Antenna::directional({0, 0}, {0, 1}, 6.0);
  const double boresight = a.gain_dbi_toward({0, 5});
  const double at45 = a.gain_dbi_toward({5, 5});
  const double at90 = a.gain_dbi_toward({5, 0});
  EXPECT_LT(at45, boresight);
  EXPECT_LT(at90, at45);
}

TEST(Antenna, BackLobeIsFloored) {
  const Antenna a =
      Antenna::directional({0, 0}, {0, 1}, 6.0, 4.0, /*back_lobe_db=*/-20.0);
  EXPECT_NEAR(a.gain_dbi_toward({0, -5}), 6.0 - 20.0, 1e-9);
}

TEST(Antenna, AmplitudeGainIsSqrtOfPowerGain) {
  const Antenna a = Antenna::directional({0, 0}, {0, 1}, 6.0);
  const double g_db = a.gain_dbi_toward({1, 3});
  EXPECT_NEAR(a.amplitude_gain_toward({1, 3}), db_to_amp(g_db), 1e-12);
}

// --------------------------------------------------------- Propagation ---

TEST(Propagation, FriisInverseWithDistance) {
  const double a1 = friis_amplitude(1.0, kWavelength);
  const double a2 = friis_amplitude(2.0, kWavelength);
  EXPECT_NEAR(a1 / a2, 2.0, 1e-12);  // amplitude ~ 1/d
}

TEST(Propagation, RadarEquationFourthPowerLaw) {
  // Round-trip reflected POWER falls as 1/d^4 for co-located TX/RX.
  const double p1 = std::pow(reflection_amplitude(1.0, 1.0, 1.0, kWavelength), 2);
  const double p2 = std::pow(reflection_amplitude(2.0, 2.0, 1.0, kWavelength), 2);
  EXPECT_NEAR(p1 / p2, 16.0, 1e-9);
}

TEST(Propagation, ReflectionScalesWithSqrtRcs) {
  const double a1 = reflection_amplitude(3.0, 3.0, 1.0, kWavelength);
  const double a4 = reflection_amplitude(3.0, 3.0, 4.0, kWavelength);
  EXPECT_NEAR(a4 / a1, 2.0, 1e-12);
}

TEST(Propagation, PhaseRotatesOneTurnPerWavelength) {
  const cdouble p0 = phase_factor(0.0, kCarrierFrequencyHz);
  const cdouble p1 = phase_factor(kWavelength, kCarrierFrequencyHz);
  EXPECT_NEAR(std::abs(p1 - p0), 0.0, 1e-9);
  const cdouble ph = phase_factor(kWavelength / 2.0, kCarrierFrequencyHz);
  EXPECT_NEAR(std::abs(ph + p0), 0.0, 1e-9);  // half wavelength = 180 deg
}

TEST(Propagation, WallTraversalCountsCrossings) {
  const Wall wall{{-5, 1}, {5, 1}, Material::kHollowWall};
  EXPECT_EQ(wall.traversals({0, 0}, {0, 2}), 1);
  EXPECT_EQ(wall.traversals({0, 0}, {1, 0.5}), 0);
  EXPECT_EQ(wall.traversals({-6, 2}, {-6, 0}), 0);  // passes beside the wall
}

TEST(Propagation, WallAttenuationAppliesPerCrossing) {
  const Wall wall{{-5, 1}, {5, 1}, Material::kHollowWall};
  EXPECT_NEAR(wall.traversal_amplitude({0, 0}, {0, 2}), db_to_amp(-9.0), 1e-12);
  EXPECT_DOUBLE_EQ(wall.traversal_amplitude({0, 0}, {1, 0.5}), 1.0);
}

// -------------------------------------------------------------- Channel ---

class FixedBody final : public MovingBody {
 public:
  explicit FixedBody(ScatterPoint p) : p_(p) {}
  std::vector<ScatterPoint> scatter_points(double) const override { return {p_}; }

 private:
  ScatterPoint p_;
};

ChannelModel make_test_channel() {
  const Vec2 boresight{0.0, 1.0};
  return ChannelModel(Antenna::directional({-0.5, 0}, boresight, 6.0),
                      Antenna::directional({+0.5, 0}, boresight, 6.0),
                      Antenna::directional({0, 0}, boresight, 6.0));
}

TEST(Channel, StaticResponseIsTimeInvariant) {
  ChannelModel ch = make_test_channel();
  ch.add_static_scatterer({{0.0, 3.0}, 5.0});
  EXPECT_EQ(ch.static_response(0), ch.static_response(0));
  // And equals the full response when nothing moves.
  EXPECT_EQ(ch.response(0, 0.0), ch.response(0, 123.0));
}

TEST(Channel, SuperpositionIsLinear) {
  // response = static + moving, the linearity nulling relies on (§1.1).
  ChannelModel ch = make_test_channel();
  ch.add_static_scatterer({{0.0, 3.0}, 5.0});
  const FixedBody body({{1.0, 4.0}, 1.0});
  ch.add_moving_body(&body);
  const cdouble total = ch.response(0, 0.0);
  const cdouble stat = ch.static_response(0);
  const cdouble mov = ch.moving_response(0, 0.0);
  EXPECT_NEAR(std::abs(total - (stat + mov)), 0.0, 1e-15);
}

TEST(Channel, WallAttenuatesScattererBehindIt) {
  ChannelModel with_wall = make_test_channel();
  ChannelModel without_wall = make_test_channel();
  with_wall.add_wall({{-10, 1}, {10, 1}, Material::kHollowWall});
  const ScatterPoint target{{0.0, 4.0}, 1.0};
  with_wall.add_static_scatterer(target);
  without_wall.add_static_scatterer(target);
  // Direct coupling is the same; subtract it to isolate the echo.
  ChannelModel bare_with = make_test_channel();
  bare_with.add_wall({{-10, 1}, {10, 1}, Material::kHollowWall});
  ChannelModel bare_without = make_test_channel();
  const cdouble echo_walled =
      with_wall.static_response(0) - bare_with.static_response(0);
  const cdouble echo_free =
      without_wall.static_response(0) - bare_without.static_response(0);
  // Two-way traversal of a 9 dB wall: 18 dB weaker (paper §4).
  EXPECT_NEAR(to_db(norm2(echo_free) / norm2(echo_walled)), 18.0, 0.5);
}

TEST(Channel, CloserScattererReflectsMorePower) {
  ChannelModel near_ch = make_test_channel();
  ChannelModel far_ch = make_test_channel();
  near_ch.add_static_scatterer({{0.0, 2.0}, 1.0});
  far_ch.add_static_scatterer({{0.0, 6.0}, 1.0});
  ChannelModel bare = make_test_channel();
  const double p_near =
      norm2(near_ch.static_response(0) - bare.static_response(0));
  const double p_far = norm2(far_ch.static_response(0) - bare.static_response(0));
  EXPECT_GT(p_near, p_far);
}

TEST(Channel, MovingScattererChangesPhaseOverDistance) {
  ChannelModel ch = make_test_channel();
  // Two bodies half a wavelength apart in round-trip distance produce
  // opposite-phase echoes.
  const FixedBody b1({{0.0, 3.0}, 1.0});
  const FixedBody b2({{0.0, 3.0 + kWavelength / 4.0}, 1.0});
  ch.add_moving_body(&b1);
  ChannelModel ch2 = make_test_channel();
  ch2.add_moving_body(&b2);
  const cdouble e1 = ch.moving_response(0, 0.0);
  const cdouble e2 = ch2.moving_response(0, 0.0);
  const double phase_diff =
      std::abs(std::arg(e1 / e2));
  EXPECT_NEAR(phase_diff, kPi, 0.05);  // half-wave round trip = pi
}

TEST(Channel, RejectsBadTxIndex) {
  const ChannelModel ch = make_test_channel();
  EXPECT_THROW((void)ch.response(2, 0.0), InvalidArgument);
  EXPECT_THROW((void)ch.response(-1, 0.0), InvalidArgument);
}

// ---------------------------------------------------------------- Noise ---

TEST(Noise, ThermalFloorMatchesKtb) {
  // kTB at 290 K over 1 Hz is -174 dBm; over 5 MHz with 0 dB NF: -107 dBm.
  EXPECT_NEAR(thermal_noise_power_dbm(5e6, 0.0), -107.0, 0.2);
  // NF adds directly in dB.
  EXPECT_NEAR(thermal_noise_power_dbm(5e6, 8.0), -99.0, 0.2);
}

TEST(Noise, AddAwgnPowerIsCorrect) {
  Rng rng(21);
  CVec x(100000, cdouble{0.0, 0.0});
  add_awgn(x, 0.5, rng);
  EXPECT_NEAR(mean_power(x), 0.5, 0.01);
}

TEST(Noise, ZeroPowerIsNoOp) {
  Rng rng(21);
  CVec x(8, cdouble{1.0, 1.0});
  add_awgn(x, 0.0, rng);
  for (const auto& v : x) EXPECT_EQ(v, (cdouble{1.0, 1.0}));
}

}  // namespace
}  // namespace wivi::rf
