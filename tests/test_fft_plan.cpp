// Unit tests for the planned FFT fast path: correctness against a naive
// O(n^2) DFT reference, bit-exact equivalence between explicit plans and
// the legacy fft()/ifft() wrappers, and plan-cache behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/dsp/fft.hpp"

namespace wivi::dsp {
namespace {

/// Textbook O(n^2) DFT: X[k] = sum_n x[n] exp(-j 2 pi k n / N).
CVec naive_dft(CSpan x) {
  const std::size_t n = x.size();
  CVec out(n, cdouble{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double phi =
          -kTwoPi * static_cast<double>(k) * static_cast<double>(i) /
          static_cast<double>(n);
      out[k] += x[i] * cdouble{std::cos(phi), std::sin(phi)};
    }
  }
  return out;
}

class FftPlanVsNaiveDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftPlanVsNaiveDft, MatchesReference) {
  const std::size_t n = GetParam();
  Rng rng(n);
  CVec x(n);
  for (auto& v : x) v = rng.complex_gaussian();
  const CVec expected = naive_dft(x);

  const FftPlan plan(n);
  CVec got = x;
  plan.forward(got);

  // The naive reference itself carries O(n eps) rounding; scale the bound.
  const double tol = 1e-10 * static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k)
    ASSERT_NEAR(std::abs(got[k] - expected[k]), 0.0, tol) << "n=" << n << " bin " << k;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftPlanVsNaiveDft,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 512,
                                           1024));

TEST(FftPlan, BitExactWithLegacyFft) {
  for (const std::size_t n : {2ul, 8ul, 64ul, 256ul}) {
    Rng rng(n + 1);
    CVec x(n);
    for (auto& v : x) v = rng.complex_gaussian();

    CVec via_wrapper = x;
    fft(via_wrapper);
    CVec via_plan = x;
    FftPlan(n).forward(via_plan);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(via_wrapper[i].real(), via_plan[i].real()) << "n=" << n;
      ASSERT_EQ(via_wrapper[i].imag(), via_plan[i].imag()) << "n=" << n;
    }

    CVec inv_wrapper = via_wrapper;
    ifft(inv_wrapper);
    CVec inv_plan = via_plan;
    FftPlan(n).inverse(inv_plan);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(inv_wrapper[i].real(), inv_plan[i].real()) << "n=" << n;
      ASSERT_EQ(inv_wrapper[i].imag(), inv_plan[i].imag()) << "n=" << n;
    }
  }
}

TEST(FftPlan, InverseRecoversInput) {
  const FftPlan plan(128);
  Rng rng(9);
  CVec x(128);
  for (auto& v : x) v = rng.complex_gaussian();
  const CVec orig = x;
  plan.forward(x);
  plan.inverse(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-12);
}

TEST(FftPlan, SizeOneIsIdentity) {
  const FftPlan plan(1);
  CVec x = {cdouble{3.0, -2.0}};
  plan.forward(x);
  EXPECT_EQ(x[0], (cdouble{3.0, -2.0}));
  plan.inverse(x);
  EXPECT_EQ(x[0], (cdouble{3.0, -2.0}));
}

TEST(FftPlan, RejectsNonPowerOfTwo) {
  EXPECT_THROW(FftPlan(12), InvalidArgument);
  EXPECT_THROW(FftPlan(0), InvalidArgument);
}

TEST(FftPlan, RejectsMismatchedBuffer) {
  const FftPlan plan(16);
  CVec x(8);
  EXPECT_THROW(plan.forward(x), InvalidArgument);
}

TEST(FftPlan, CacheReturnsStableReference) {
  const FftPlan& a = fft_plan(64);
  const FftPlan& b = fft_plan(64);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_NE(&a, &fft_plan(128));
}

}  // namespace
}  // namespace wivi::dsp
