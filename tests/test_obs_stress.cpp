// Concurrency stress for the lock-free wivi::obs primitives: many writer
// threads hammer one Counter and one sharded Histogram while a reader
// thread snapshots continuously. Totals must be exact after join — the
// relaxed per-slot accounting loses nothing — and the whole binary is a
// TSan target (the sanitize CI job runs it under -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/obs/obs.hpp"

namespace wivi {
namespace {

constexpr int kWriters = 8;
constexpr std::uint64_t kOpsPerWriter = 200'000;

TEST(ObsStress, CounterIsExactUnderConcurrentWritersAndReaders) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("stress_total");
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    std::uint64_t prev = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t v = c.value();
      EXPECT_GE(v, prev);  // monotone even mid-flight
      prev = v;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) c.add();
    });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(c.value(), kWriters * kOpsPerWriter);
}

TEST(ObsStress, HistogramTotalsAreExactUnderConcurrentWriters) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("stress_ns", /*slots=*/4);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::HistogramSnapshot s = h.snapshot();
      EXPECT_LE(s.p50, s.max);
    }
  });
  std::uint64_t expected_sum = 0;
  {
    // Every writer records the same value stream, so the expected sum is
    // kWriters times one stream's sum.
    std::uint64_t v = 1, one = 0;
    for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) {
      one += v % 1'000'000;
      v = v * 2862933555777941757ULL + 3037000493ULL;
    }
    expected_sum = one * kWriters;
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&] {
      std::uint64_t v = 1;
      for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) {
        h.record(v % 1'000'000);
        v = v * 2862933555777941757ULL + 3037000493ULL;
      }
    });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kWriters * kOpsPerWriter);
  EXPECT_EQ(s.sum, expected_sum);
}

TEST(ObsStress, RegistryInterningIsThreadSafe) {
  obs::Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t)
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("shared_total").add();
        reg.histogram("shared_ns").record(static_cast<std::uint64_t>(i));
      }
    });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared_total").value(),
            static_cast<std::uint64_t>(kWriters) * 1000);
  EXPECT_EQ(reg.histogram("shared_ns").count(),
            static_cast<std::uint64_t>(kWriters) * 1000);
}

TEST(ObsStress, RuntimeToggleRacesAreBenign) {
  // Flipping set_enabled() while writers run must never corrupt the
  // counter — it only decides whether an increment lands or not, so the
  // final value is bounded by [0, total ops] and the binary is race-free.
  obs::Registry reg;
  obs::Counter& c = reg.counter("toggle_total");
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    bool on = false;
    while (!stop.load(std::memory_order_acquire)) {
      obs::set_enabled(on);
      on = !on;
    }
    obs::set_enabled(true);
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < 50'000; ++i) c.add();
    });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  toggler.join();
  EXPECT_LE(c.value(), 4u * 50'000u);
}

}  // namespace
}  // namespace wivi
