// Loopback integration: the full wire path through real sockets —
// sim trace → Sender frames → UDP datagrams / a TCP stream → Receiver →
// per-sensor reassembly → EngineBinding → rt::Engine sessions. The
// headline assertion is parity: a network-fed engine must produce the
// byte-identical typed event stream an in-process feed of the same
// chunks produces. Also pins the wivi_net_* metric export (engine
// snapshot + EngineStats mirror) and typed rejection of malformed
// datagrams arriving over a real socket.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/net/ingest.hpp"
#include "src/net/receiver.hpp"
#include "src/net/sender.hpp"
#include "src/obs/snapshot.hpp"
#include "src/rt/engine.hpp"
#include "src/sim/netfeed.hpp"
#include "tests/net_test_util.hpp"

namespace wivi {
namespace {

constexpr std::size_t kSamples = 800;
constexpr std::size_t kChunkLen = 25;
constexpr std::uint64_t kTraceSeed = 4242;
constexpr std::size_t kMaxPayload = 256;  // force multi-fragment chunks

api::PipelineSpec make_spec() {
  api::PipelineSpec spec;
  spec.count = api::CountStage{};
  spec.guard.max_chunk_samples = kChunkLen * 4;
  return spec;
}

rt::IngestConfig make_ingest() {
  rt::IngestConfig ic;
  ic.ring_capacity = 8;
  ic.backpressure = rt::Backpressure::kBlock;
  return ic;
}

/// The ground truth: the same trace fed straight into an engine session,
/// no network. Returns the session's bit-exact event log.
std::string in_process_event_log(std::uint64_t trace_seed) {
  rt::Engine::Config ec;
  ec.num_threads = 1;
  rt::Engine engine(ec);
  const rt::SessionId id = engine.open_session(make_spec(), make_ingest());
  auto feed = nettest::make_feed(kSamples, trace_seed, kChunkLen);
  CVec chunk;
  while (feed.next(chunk)) engine.offer(id, std::move(chunk));
  engine.close_session(id);
  engine.drain();
  std::vector<rt::Event> events;
  engine.poll(events);
  return nettest::event_log(events, id);
}

/// Drive the receiver until the socket goes quiet: a few empty polls in a
/// row mean everything in flight has been drained.
void pump(net::Receiver& rx) {
  int idle = 0;
  while (idle < 3) {
    if (rx.poll_once(50) == 0)
      ++idle;
    else
      idle = 0;
  }
}

/// One network-fed engine run over the given transport; returns the
/// sensor's event log (and exposes stats through the out-params).
std::string network_event_log(net::Transport transport,
                              std::uint64_t trace_seed,
                              std::uint32_t sensor_id,
                              net::WireStats* wire_out = nullptr,
                              std::uint64_t* frames_sent = nullptr) {
  rt::Engine::Config ec;
  ec.num_threads = 1;
  rt::Engine engine(ec);
  net::EngineBinding binding(engine, {make_spec(), make_ingest()});

  net::ReceiverConfig rc;
  rc.enable_udp = transport == net::Transport::kUdp;
  rc.enable_tcp = transport == net::Transport::kTcp;
  rc.registry = &engine.registry();
  net::Receiver rx(rc, binding.sink(), binding.end_sink());

  net::Sender::Config sc;
  sc.transport = transport;
  sc.port = transport == net::Transport::kUdp ? rx.udp_port() : rx.tcp_port();
  sc.max_payload = kMaxPayload;
  net::Sender sender(sc);
  sim::NetFeeder feeder(sender, sensor_id);
  auto feed = nettest::make_feed(kSamples, trace_seed, kChunkLen);
  feeder.feed(feed);  // every chunk + the end-of-stream mark
  sender.close();

  pump(rx);
  rx.flush();
  binding.close_all();  // no-op when end-of-stream already closed it
  engine.drain();

  std::vector<rt::Event> events;
  engine.poll(events);
  const auto id = binding.session(sensor_id);
  EXPECT_TRUE(id.has_value()) << "sensor never bound to a session";
  if (!id) return {};
  if (wire_out) *wire_out = rx.wire_stats();
  if (frames_sent) *frames_sent = sender.frames_sent();
  return nettest::event_log(events, *id);
}

TEST(Loopback, UdpEngineMatchesInProcessFeedBitExactly) {
  const std::string live = in_process_event_log(kTraceSeed);
  ASSERT_FALSE(live.empty());
  net::WireStats wire;
  std::uint64_t sent = 0;
  const std::string net_log = network_event_log(
      net::Transport::kUdp, kTraceSeed, 7, &wire, &sent);
  EXPECT_EQ(live, net_log);
  // Loopback UDP at test sizes: nothing lost, everything accepted.
  EXPECT_EQ(wire.frames_in, sent);
  EXPECT_EQ(wire.frames_accepted, sent);
  EXPECT_EQ(wire.frames_rejected, 0u);
  EXPECT_EQ(wire.frames_in, wire.frames_accepted + wire.frames_rejected);
}

TEST(Loopback, TcpEngineMatchesInProcessFeedBitExactly) {
  const std::string live = in_process_event_log(kTraceSeed);
  ASSERT_FALSE(live.empty());
  net::WireStats wire;
  std::uint64_t sent = 0;
  const std::string net_log = network_event_log(
      net::Transport::kTcp, kTraceSeed, 9, &wire, &sent);
  EXPECT_EQ(live, net_log);
  EXPECT_EQ(wire.connections_in, 1u);
  EXPECT_EQ(wire.frames_accepted, sent);
  EXPECT_EQ(wire.frames_rejected, 0u);
}

TEST(Loopback, UdpAndTcpProduceIdenticalEventStreams) {
  EXPECT_EQ(network_event_log(net::Transport::kUdp, 555, 1),
            network_event_log(net::Transport::kTcp, 555, 1));
}

TEST(Loopback, MultiSensorStreamsDemuxToSeparateSessions) {
  rt::Engine::Config ec;
  ec.num_threads = 1;
  rt::Engine engine(ec);
  net::EngineBinding binding(engine, {make_spec(), make_ingest()});
  net::ReceiverConfig rc;
  rc.enable_tcp = false;
  net::Receiver rx(rc, binding.sink(), binding.end_sink());

  net::Sender::Config sc;
  sc.port = rx.udp_port();
  sc.max_payload = kMaxPayload;
  net::Sender sender(sc);

  // Interleave two sensors' chunk streams over one socket.
  auto feed_a = nettest::make_feed(kSamples, 100, kChunkLen);
  auto feed_b = nettest::make_feed(kSamples, 200, kChunkLen);
  CVec chunk;
  bool more_a = true, more_b = true;
  while (more_a || more_b) {
    if (more_a && (more_a = feed_a.next(chunk))) sender.send_chunk(11, chunk);
    if (more_b && (more_b = feed_b.next(chunk))) sender.send_chunk(22, chunk);
    rx.poll_once(0);  // drain as we go: bounded socket buffers
  }
  sender.send_end(11);
  sender.send_end(22);
  pump(rx);
  rx.flush();
  binding.close_all();
  engine.drain();

  EXPECT_EQ(binding.num_sessions(), 2u);
  EXPECT_EQ(rx.demux().num_sensors(), 2u);
  const auto id_a = binding.session(11);
  const auto id_b = binding.session(22);
  ASSERT_TRUE(id_a.has_value());
  ASSERT_TRUE(id_b.has_value());

  std::vector<rt::Event> events;
  engine.poll(events);
  EXPECT_EQ(nettest::event_log(events, *id_a), in_process_event_log(100));
  EXPECT_EQ(nettest::event_log(events, *id_b), in_process_event_log(200));
}

TEST(Loopback, MalformedDatagramsRejectTypedOverRealSockets) {
  net::Demux::Stats ignored;
  (void)ignored;
  std::size_t delivered = 0;
  net::ReceiverConfig rc;
  rc.enable_tcp = false;
  net::Receiver rx(rc, [&](std::uint32_t, std::uint64_t, CVec&&) {
    ++delivered;
    return true;
  });
  net::Sender::Config sc;
  sc.port = rx.udp_port();
  net::Sender sender(sc);

  const auto good = net::chunk_to_frames(1, 0, CVec(8, cdouble(1, 2)))[0];
  sender.send_raw(good);

  auto bad_magic = good;
  bad_magic[1] = std::byte{0x00};
  sender.send_raw(bad_magic);

  auto bad_crc = good;
  bad_crc[net::kHeaderSize] ^= std::byte{0xFF};
  sender.send_raw(bad_crc);

  // A truncated frame: a datagram is never a prefix, so kNeedMore at the
  // parser surfaces as a length rejection.
  sender.send_raw(std::span(good).first(good.size() - 4));

  // A frame with trailing garbage: datagram/frame size mismatch.
  auto trailing = good;
  trailing.push_back(std::byte{0xAB});
  sender.send_raw(trailing);

  pump(rx);
  const auto& w = rx.wire_stats();
  EXPECT_EQ(w.datagrams_in, 5u);
  EXPECT_EQ(w.frames_in, 5u);
  EXPECT_EQ(w.frames_accepted, 1u);
  EXPECT_EQ(w.frames_rejected, 4u);
  EXPECT_EQ(w.reject_bad_magic, 1u);
  EXPECT_EQ(w.reject_bad_crc, 1u);
  EXPECT_EQ(w.reject_bad_length, 2u);
  EXPECT_EQ(delivered, 1u);
}

TEST(Loopback, NetMetricsExportThroughEngineSnapshotAndStats) {
  rt::Engine::Config ec;
  ec.num_threads = 1;
  rt::Engine engine(ec);
  net::EngineBinding binding(engine, {make_spec(), make_ingest()});
  net::ReceiverConfig rc;
  rc.enable_tcp = false;
  rc.registry = &engine.registry();
  net::Receiver rx(rc, binding.sink(), binding.end_sink());

  net::Sender::Config sc;
  sc.port = rx.udp_port();
  sc.max_payload = kMaxPayload;
  net::Sender sender(sc);
  sim::NetFeeder feeder(sender, 3);
  auto feed = nettest::make_feed(kSamples, 9, kChunkLen);
  feeder.feed(feed);
  pump(rx);
  rx.flush();
  binding.close_all();
  engine.drain();

  const auto snap = engine.snapshot();
  const std::uint64_t frames_in = snap.counter_value("wivi_net_frames_in_total");
  const std::uint64_t accepted =
      snap.counter_value("wivi_net_frames_accepted_total");
  const std::uint64_t delivered =
      snap.counter_value("wivi_net_frames_delivered_total");
  const std::uint64_t control =
      snap.counter_value("wivi_net_frames_control_total");
  EXPECT_EQ(frames_in, sender.frames_sent());
  EXPECT_EQ(accepted, frames_in);
  // Conservation at the metric level: every accepted frame reached a
  // terminal bucket once the flush ran.
  EXPECT_EQ(accepted, delivered + control +
                          snap.counter_value("wivi_net_frames_dup_total") +
                          snap.counter_value("wivi_net_frames_stale_total") +
                          snap.counter_value("wivi_net_frames_evicted_total") +
                          snap.counter_value(
                              "wivi_net_frames_decode_failed_total") +
                          snap.counter_value(
                              "wivi_net_frames_sink_dropped_total") +
                          snap.counter_value("wivi_net_frames_in_flight"));
  EXPECT_EQ(snap.counter_value("wivi_net_frames_in_flight"), 0u);
  EXPECT_EQ(snap.counter_value("wivi_net_bytes_in_total"),
            sender.bytes_sent());
  EXPECT_EQ(snap.counter_value("wivi_net_sensors"), 1u);

  // The EngineStats mirror carries the same numbers for stats() callers.
  const rt::Engine::EngineStats st = engine.stats();
  EXPECT_EQ(st.net_frames_in, frames_in);
  EXPECT_EQ(st.net_frames_accepted, accepted);
  EXPECT_EQ(st.net_frames_rejected, 0u);
  EXPECT_EQ(st.net_chunks_delivered,
            snap.counter_value("wivi_net_chunks_delivered_total"));
  EXPECT_EQ(st.net_bytes_in, sender.bytes_sent());
}

TEST(Loopback, BackgroundThreadReceiverDeliversEverything) {
  rt::Engine::Config ec;
  ec.num_threads = 1;
  rt::Engine engine(ec);
  net::EngineBinding binding(engine, {make_spec(), make_ingest()});
  net::ReceiverConfig rc;
  rc.enable_udp = false;
  net::Receiver rx(rc, binding.sink(), binding.end_sink());
  rx.start();

  net::Sender::Config sc;
  sc.transport = net::Transport::kTcp;
  sc.port = rx.tcp_port();
  sc.max_payload = kMaxPayload;
  net::Sender sender(sc);
  sim::NetFeeder feeder(sender, 4);
  auto feed = nettest::make_feed(kSamples, kTraceSeed, kChunkLen);
  const std::size_t chunks = feeder.feed(feed);
  sender.close();

  // TCP is lossless: wait until the background thread has accepted
  // every frame, then stop it.
  const std::uint64_t expect_frames = sender.frames_sent();
  for (int i = 0; i < 2000 && rx.wire_stats().frames_accepted < expect_frames;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  rx.stop();
  rx.flush();
  binding.close_all();
  engine.drain();

  EXPECT_EQ(rx.wire_stats().frames_accepted, expect_frames);
  const auto id = binding.session(4);
  ASSERT_TRUE(id.has_value());
  std::vector<rt::Event> events;
  engine.poll(events);
  EXPECT_EQ(nettest::event_log(events, *id), in_process_event_log(kTraceSeed));
  EXPECT_GT(chunks, 0u);
}

}  // namespace
}  // namespace wivi
