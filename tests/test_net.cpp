// wivi::net wire format + reassembly: CRC32C known answers, frame
// encode/parse round trips, the typed rejection taxonomy (a malformed
// frame is a classified reject, never an exception), TCP stream
// re-framing with resynchronisation, per-sensor reassembly under
// reordering / duplication / loss / fragmentation, the exhaustive frame
// conservation law, and the deterministic wire-level fault injector.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/fault/fault.hpp"
#include "src/net/crc32c.hpp"
#include "src/net/frame.hpp"
#include "src/net/reassembler.hpp"
#include "src/net/wire_fault.hpp"

namespace wivi {
namespace {

using net::FrameHeader;
using net::FrameView;
using net::ParseStatus;

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> out(std::strlen(s));
  std::memcpy(out.data(), s, out.size());
  return out;
}

CVec ramp_chunk(std::size_t n, double base = 0.0) {
  CVec c(n);
  for (std::size_t i = 0; i < n; ++i)
    c[i] = cdouble(base + static_cast<double>(i), -static_cast<double>(i));
  return c;
}

void expect_chunks_bitwise_equal(const CVec& a, const CVec& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(cdouble)), 0);
}

/// The exhaustive accounting identity every reassembler state must obey.
void expect_conservation(const net::Reassembler::Stats& s) {
  EXPECT_EQ(s.frames_in,
            s.frames_delivered + s.frames_dup + s.frames_stale +
                s.frames_evicted + s.frames_decode_failed +
                s.frames_sink_dropped + s.frames_control + s.frames_in_flight);
}

/// A sink collecting (sensor, seq, chunk) triples; can be told to refuse.
struct Collector {
  struct Item {
    std::uint32_t sensor;
    std::uint64_t seq;
    CVec chunk;
  };
  std::vector<Item> items;
  std::vector<std::uint32_t> ends;
  bool accept = true;

  net::ChunkSink sink() {
    return [this](std::uint32_t sensor, std::uint64_t seq, CVec&& chunk) {
      if (!accept) return false;
      items.push_back({sensor, seq, std::move(chunk)});
      return true;
    };
  }
  net::EndSink end_sink() {
    return [this](std::uint32_t sensor) { ends.push_back(sensor); };
  }
};

// ------------------------------------------------------------- crc32c ---

TEST(Crc32c, KnownAnswer) {
  // The Castagnoli check value: CRC32C("123456789") == 0xE3069283.
  EXPECT_EQ(net::crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(net::crc32c(std::span<const std::byte>{}), 0u);
}

TEST(Crc32c, ContinuationEqualsOneShot) {
  const std::vector<std::byte> data = bytes_of("the quick brown fox 0123456789");
  const std::uint32_t whole = net::crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t c = net::crc32c(0, std::span(data).first(split));
    c = net::crc32c(c, std::span(data).subspan(split));
    EXPECT_EQ(c, whole) << "split at " << split;
  }
}

TEST(Crc32c, SensitiveToEveryByte) {
  std::vector<std::byte> data = bytes_of("abcdefgh12345678");
  const std::uint32_t base = net::crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= std::byte{1};
    EXPECT_NE(net::crc32c(data), base) << "byte " << i;
    data[i] ^= std::byte{1};
  }
}

// ------------------------------------------------------- frame codec ---

TEST(Frame, SamplesRoundTripBitExact) {
  const CVec chunk = ramp_chunk(37, 0.25);
  const std::vector<std::byte> wire = net::encode_samples(chunk);
  EXPECT_EQ(wire.size(), chunk.size() * net::kBytesPerSample);
  expect_chunks_bitwise_equal(chunk, net::decode_samples(wire));
}

TEST(Frame, EncodeParseRoundTrip) {
  FrameHeader h;
  h.flags = net::kFlagEndOfStream;
  h.sensor_id = 0xA1B2C3D4u;
  h.chunk_seq = 0x1122334455667788ull;
  h.frag_index = 2;
  h.frag_count = 5;
  const std::vector<std::byte> payload = bytes_of("payload-bytes!!!");
  const std::vector<std::byte> frame = net::encode_frame(h, payload);
  ASSERT_EQ(frame.size(), net::kHeaderSize + payload.size());

  FrameView v;
  std::size_t consumed = 0;
  ASSERT_EQ(net::parse_frame(frame, v, &consumed), ParseStatus::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(v.header.flags, h.flags);
  EXPECT_EQ(v.header.sensor_id, h.sensor_id);
  EXPECT_EQ(v.header.chunk_seq, h.chunk_seq);
  EXPECT_EQ(v.header.frag_index, h.frag_index);
  EXPECT_EQ(v.header.frag_count, h.frag_count);
  EXPECT_EQ(v.header.payload_len, payload.size());
  ASSERT_EQ(v.payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(v.payload.data(), payload.data(), payload.size()), 0);
  // Zero-copy: the payload view aliases the input buffer.
  EXPECT_EQ(v.payload.data(), frame.data() + net::kHeaderSize);
}

TEST(Frame, WireLayoutIsLittleEndianAndStable) {
  FrameHeader h;
  h.sensor_id = 7;
  h.chunk_seq = 9;
  const std::vector<std::byte> frame = net::encode_frame(h, {});
  // "WVFR" magic bytes on the wire, version 1 LE at offset 4.
  EXPECT_EQ(frame[0], std::byte{0x57});
  EXPECT_EQ(frame[1], std::byte{0x56});
  EXPECT_EQ(frame[2], std::byte{0x46});
  EXPECT_EQ(frame[3], std::byte{0x52});
  EXPECT_EQ(frame[4], std::byte{0x01});
  EXPECT_EQ(frame[5], std::byte{0x00});
  EXPECT_EQ(frame[8], std::byte{0x07});   // sensor_id LE
  EXPECT_EQ(frame[16], std::byte{0x09});  // chunk_seq LE
}

TEST(Frame, RejectionTaxonomy) {
  const std::vector<std::byte> payload = bytes_of("0123456789abcdef");
  FrameHeader h;
  h.sensor_id = 1;
  const std::vector<std::byte> good = net::encode_frame(h, payload);
  FrameView v;

  auto mutate = [&](std::size_t off, std::byte val) {
    std::vector<std::byte> f = good;
    f[off] = val;
    return f;
  };

  EXPECT_EQ(net::parse_frame(mutate(0, std::byte{0x00}), v),
            ParseStatus::kBadMagic);
  EXPECT_EQ(net::parse_frame(mutate(4, std::byte{0x02}), v),
            ParseStatus::kBadVersion);
  EXPECT_EQ(net::parse_frame(mutate(6, std::byte{0x02}), v),
            ParseStatus::kBadFlags);
  // payload_len blown past kMaxPayloadBytes (offset 12, LE: set byte 2).
  EXPECT_EQ(net::parse_frame(mutate(14, std::byte{0xFF}), v),
            ParseStatus::kBadLength);
  // frag_count == 0 (offset 26).
  EXPECT_EQ(net::parse_frame(mutate(26, std::byte{0x00}), v),
            ParseStatus::kBadFragment);
  // frag_index >= frag_count.
  EXPECT_EQ(net::parse_frame(mutate(24, std::byte{0x05}), v),
            ParseStatus::kBadFragment);
  // Any payload or header bit flip the structural checks miss → CRC.
  EXPECT_EQ(net::parse_frame(mutate(net::kHeaderSize + 3, std::byte{0xAA}), v),
            ParseStatus::kBadCrc);
  EXPECT_EQ(net::parse_frame(mutate(8, std::byte{0xEE}), v),
            ParseStatus::kBadCrc);

  // Truncations: a header-or-more prefix wants more bytes; a sub-magic
  // prefix is kNeedMore only while it could still be a magic.
  EXPECT_EQ(net::parse_frame(std::span(good).first(good.size() - 1), v),
            ParseStatus::kNeedMore);
  EXPECT_EQ(net::parse_frame(std::span(good).first(net::kHeaderSize), v),
            ParseStatus::kNeedMore);
  EXPECT_EQ(net::parse_frame(std::span(good).first(2), v),
            ParseStatus::kNeedMore);
  const std::vector<std::byte> junk = bytes_of("zz");
  EXPECT_EQ(net::parse_frame(junk, v), ParseStatus::kBadMagic);

  // The untampered frame still parses (the mutations copied).
  EXPECT_EQ(net::parse_frame(good, v), ParseStatus::kOk);
}

TEST(Frame, EncodeValidatesPreconditions) {
  FrameHeader h;
  h.frag_count = 0;
  EXPECT_THROW((void)net::encode_frame(h, {}), InvalidArgument);
  h = FrameHeader{};
  h.flags = 0x8000;
  EXPECT_THROW((void)net::encode_frame(h, {}), InvalidArgument);
}

TEST(Frame, ChunkToFramesFragmentsOnWholeSamples) {
  const CVec chunk = ramp_chunk(100);
  // 1600 payload bytes at <=256 per fragment -> 7 fragments.
  const auto frames = net::chunk_to_frames(9, 42, chunk, 256);
  ASSERT_EQ(frames.size(), 7u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    FrameView v;
    ASSERT_EQ(net::parse_frame(frames[i], v), ParseStatus::kOk);
    EXPECT_EQ(v.header.sensor_id, 9u);
    EXPECT_EQ(v.header.chunk_seq, 42u);
    EXPECT_EQ(v.header.frag_index, i);
    EXPECT_EQ(v.header.frag_count, frames.size());
    EXPECT_EQ(v.payload.size() % net::kBytesPerSample, 0u);
    total += v.payload.size();
  }
  EXPECT_EQ(total, chunk.size() * net::kBytesPerSample);

  // An empty chunk still produces its (control) frame.
  const auto empty = net::chunk_to_frames(9, 43, CVec{}, 256,
                                          net::kFlagEndOfStream);
  ASSERT_EQ(empty.size(), 1u);
  FrameView v;
  ASSERT_EQ(net::parse_frame(empty[0], v), ParseStatus::kOk);
  EXPECT_EQ(v.header.payload_len, 0u);
  EXPECT_EQ(v.header.flags, net::kFlagEndOfStream);
}

// ----------------------------------------------------- stream decoder ---

TEST(StreamDecoder, ReassemblesSplitAndMergedReads) {
  const CVec c0 = ramp_chunk(20, 1.0), c1 = ramp_chunk(5, 2.0);
  std::vector<std::byte> stream;
  for (const auto& f : net::chunk_to_frames(1, 0, c0))
    stream.insert(stream.end(), f.begin(), f.end());
  for (const auto& f : net::chunk_to_frames(1, 1, c1))
    stream.insert(stream.end(), f.begin(), f.end());

  for (std::size_t piece : {1u, 7u, 31u, 4096u}) {
    net::StreamDecoder dec;
    std::size_t frames = 0;
    FrameView v;
    for (std::size_t off = 0; off < stream.size(); off += piece) {
      const std::size_t len = std::min(piece, stream.size() - off);
      dec.push(std::span<const std::byte>(stream.data() + off, len));
      for (;;) {
        const auto r = dec.poll(v);
        if (r == net::StreamDecoder::Result::kFrame)
          ++frames;
        else
          break;
      }
    }
    EXPECT_EQ(frames, 2u) << "piece size " << piece;
    EXPECT_EQ(dec.bytes_skipped(), 0u);
  }
}

TEST(StreamDecoder, ResyncsAfterGarbageWithOneTypedReject) {
  const auto frames = net::chunk_to_frames(1, 0, ramp_chunk(4));
  ASSERT_EQ(frames.size(), 1u);
  std::vector<std::byte> stream = bytes_of("garbage bytes here");
  stream.insert(stream.end(), frames[0].begin(), frames[0].end());

  net::StreamDecoder dec;
  dec.push(stream);
  FrameView v;
  std::size_t rejects = 0, got = 0;
  for (;;) {
    const auto r = dec.poll(v);
    if (r == net::StreamDecoder::Result::kNeedMore) break;
    if (r == net::StreamDecoder::Result::kReject) {
      ++rejects;
      EXPECT_EQ(dec.last_error(), ParseStatus::kBadMagic);
    } else {
      ++got;
    }
  }
  EXPECT_EQ(got, 1u);
  EXPECT_GE(rejects, 1u);
  EXPECT_EQ(dec.bytes_skipped(), 18u);
}

TEST(StreamDecoder, CorruptFrameRejectsThenRecovers) {
  const auto f0 = net::chunk_to_frames(1, 0, ramp_chunk(8));
  const auto f1 = net::chunk_to_frames(1, 1, ramp_chunk(8, 5.0));
  std::vector<std::byte> stream(f0[0].begin(), f0[0].end());
  stream[net::kHeaderSize + 2] ^= std::byte{0xFF};  // payload corruption
  stream.insert(stream.end(), f1[0].begin(), f1[0].end());

  net::StreamDecoder dec;
  dec.push(stream);
  FrameView v;
  bool saw_crc_reject = false;
  std::size_t got = 0;
  for (;;) {
    const auto r = dec.poll(v);
    if (r == net::StreamDecoder::Result::kNeedMore) break;
    if (r == net::StreamDecoder::Result::kReject) {
      if (dec.last_error() == ParseStatus::kBadCrc) saw_crc_reject = true;
    } else {
      ++got;
      EXPECT_EQ(v.header.chunk_seq, 1u);  // only the clean frame survives
    }
  }
  EXPECT_TRUE(saw_crc_reject);
  EXPECT_EQ(got, 1u);
}

// -------------------------------------------------------- reassembler ---

TEST(Reassembler, InOrderFragmentedChunkRoundTrip) {
  const CVec chunk = ramp_chunk(100);
  Collector col;
  net::Reassembler r(7, {});
  for (const auto& f : net::chunk_to_frames(7, 0, chunk, 256)) {
    FrameView v;
    ASSERT_EQ(net::parse_frame(f, v), ParseStatus::kOk);
    r.feed(v, col.sink(), col.end_sink());
  }
  ASSERT_EQ(col.items.size(), 1u);
  EXPECT_EQ(col.items[0].sensor, 7u);
  EXPECT_EQ(col.items[0].seq, 0u);
  expect_chunks_bitwise_equal(chunk, col.items[0].chunk);
  EXPECT_EQ(r.stats().chunks_delivered, 1u);
  EXPECT_EQ(r.stats().frames_in_flight, 0u);
  expect_conservation(r.stats());
}

TEST(Reassembler, OutOfOrderWithinWindowDeliversInOrder) {
  Collector col;
  net::Reassembler r(1, {});
  // Three single-fragment chunks fed 2, 0, 1.
  std::vector<std::vector<std::byte>> frames;
  for (std::uint64_t seq : {2u, 0u, 1u})
    frames.push_back(net::chunk_to_frames(1, seq, ramp_chunk(8, seq))[0]);
  for (const auto& f : frames) {
    FrameView v;
    ASSERT_EQ(net::parse_frame(f, v), ParseStatus::kOk);
    r.feed(v, col.sink(), col.end_sink());
  }
  ASSERT_EQ(col.items.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(col.items[i].seq, i);
  EXPECT_EQ(r.stats().chunk_gaps, 0u);
  expect_conservation(r.stats());
}

TEST(Reassembler, DuplicatesAndStalesAreCounted) {
  Collector col;
  net::Reassembler r(1, {});
  const auto frames = net::chunk_to_frames(1, 0, ramp_chunk(32), 256);
  ASSERT_GE(frames.size(), 2u);
  FrameView v;
  ASSERT_EQ(net::parse_frame(frames[0], v), ParseStatus::kOk);
  r.feed(v, col.sink(), col.end_sink());
  r.feed(v, col.sink(), col.end_sink());  // duplicate while in flight
  for (std::size_t i = 1; i < frames.size(); ++i) {
    ASSERT_EQ(net::parse_frame(frames[i], v), ParseStatus::kOk);
    r.feed(v, col.sink(), col.end_sink());
  }
  ASSERT_EQ(net::parse_frame(frames[0], v), ParseStatus::kOk);
  r.feed(v, col.sink(), col.end_sink());  // late dup: chunk already done

  EXPECT_EQ(col.items.size(), 1u);
  EXPECT_EQ(r.stats().frames_dup, 1u);
  EXPECT_EQ(r.stats().frames_stale, 1u);
  expect_conservation(r.stats());
}

TEST(Reassembler, WindowAdvanceDeclaresGapsAndEvictsStragglers) {
  net::Reassembler::Config cfg;
  cfg.window_chunks = 4;
  Collector col;
  net::Reassembler r(1, cfg);

  // A straggler: fragment 0 of 7 for seq 0 (incomplete forever).
  const auto frag = net::chunk_to_frames(1, 0, ramp_chunk(100), 256);
  FrameView v;
  ASSERT_EQ(net::parse_frame(frag[0], v), ParseStatus::kOk);
  r.feed(v, col.sink(), col.end_sink());

  // A complete chunk at seq 2; seq 1 never arrives.
  const auto ok2 = net::chunk_to_frames(1, 2, ramp_chunk(8, 2.0));
  ASSERT_EQ(net::parse_frame(ok2[0], v), ParseStatus::kOk);
  r.feed(v, col.sink(), col.end_sink());

  // seq 9 lands 4+ past the cursor: forces the window to [6, 10) —
  // seq 0 is evicted (partial), seq 2 delivered, 1/3/4/5 become gaps.
  const auto far = net::chunk_to_frames(1, 9, ramp_chunk(8, 9.0));
  ASSERT_EQ(net::parse_frame(far[0], v), ParseStatus::kOk);
  r.feed(v, col.sink(), col.end_sink());

  ASSERT_EQ(col.items.size(), 1u);
  EXPECT_EQ(col.items[0].seq, 2u);
  EXPECT_EQ(r.stats().chunks_evicted, 1u);
  EXPECT_EQ(r.stats().frames_evicted, 1u);
  EXPECT_EQ(r.stats().chunk_gaps, 4u);
  EXPECT_EQ(r.next_seq(), 6u);
  expect_conservation(r.stats());

  // A late fragment of the evicted chunk reads stale, never resurrects.
  ASSERT_EQ(net::parse_frame(frag[1], v), ParseStatus::kOk);
  r.feed(v, col.sink(), col.end_sink());
  EXPECT_EQ(r.stats().frames_stale, 1u);
  expect_conservation(r.stats());

  // Flush drains seq 9 and counts the 6..8 gaps.
  r.flush(col.sink(), col.end_sink());
  ASSERT_EQ(col.items.size(), 2u);
  EXPECT_EQ(col.items[1].seq, 9u);
  EXPECT_EQ(r.stats().chunk_gaps, 7u);
  EXPECT_EQ(r.stats().frames_in_flight, 0u);
  expect_conservation(r.stats());
}

TEST(Reassembler, SinkRefusalIsCountedNotRetried) {
  Collector col;
  col.accept = false;
  net::Reassembler r(1, {});
  FrameView v;
  const auto f = net::chunk_to_frames(1, 0, ramp_chunk(8));
  ASSERT_EQ(net::parse_frame(f[0], v), ParseStatus::kOk);
  r.feed(v, col.sink(), col.end_sink());
  EXPECT_TRUE(col.items.empty());
  EXPECT_EQ(r.stats().frames_sink_dropped, 1u);
  EXPECT_EQ(r.stats().sink_dropped_chunks, 1u);
  expect_conservation(r.stats());
}

TEST(Reassembler, EndOfStreamMarkerFiresEndSink) {
  Collector col;
  net::Reassembler r(5, {});
  FrameView v;
  const auto data = net::chunk_to_frames(5, 0, ramp_chunk(8));
  ASSERT_EQ(net::parse_frame(data[0], v), ParseStatus::kOk);
  r.feed(v, col.sink(), col.end_sink());
  const auto end = net::chunk_to_frames(5, 1, CVec{}, net::kMaxPayloadBytes,
                                        net::kFlagEndOfStream);
  ASSERT_EQ(net::parse_frame(end[0], v), ParseStatus::kOk);
  r.feed(v, col.sink(), col.end_sink());

  EXPECT_EQ(col.items.size(), 1u);
  ASSERT_EQ(col.ends.size(), 1u);
  EXPECT_EQ(col.ends[0], 5u);
  EXPECT_EQ(r.stats().frames_control, 1u);
  expect_conservation(r.stats());
}

TEST(Demux, RoutesPerSensorAndBoundsTheTable) {
  Collector col;
  net::Demux demux({}, col.sink(), col.end_sink(), /*max_sensors=*/2);
  FrameView v;
  for (std::uint32_t sensor : {10u, 20u, 30u}) {
    const auto f = net::chunk_to_frames(sensor, 0, ramp_chunk(4, sensor));
    ASSERT_EQ(net::parse_frame(f[0], v), ParseStatus::kOk);
    demux.feed(v);
  }
  EXPECT_EQ(demux.num_sensors(), 2u);
  EXPECT_EQ(demux.sensors_refused(), 1u);
  ASSERT_EQ(col.items.size(), 2u);
  EXPECT_EQ(col.items[0].sensor, 10u);
  EXPECT_EQ(col.items[1].sensor, 20u);
  EXPECT_NE(demux.sensor(10), nullptr);
  EXPECT_EQ(demux.sensor(30), nullptr);
  expect_conservation(demux.stats());
}

// --------------------------------------------------------- wire faults ---

TEST(WireFault, SplitMix64KnownAnswer) {
  // First output of a SplitMix64 stream seeded 0 — pins the shared
  // primitive net-layer decisions key off.
  EXPECT_EQ(fault::splitmix64(0), 0xE220A8397B1DCDAFull);
}

TEST(WireFault, DeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    net::WireFaultSpec spec;
    spec.seed = seed;
    spec.drop_prob = 0.2;
    spec.duplicate_prob = 0.2;
    spec.reorder_prob = 0.2;
    spec.truncate_prob = 0.2;
    spec.corrupt_prob = 0.2;
    net::FaultyWire wire(spec);
    std::vector<std::vector<std::byte>> out;
    const auto emit = [&](std::vector<std::byte>&& f) {
      out.push_back(std::move(f));
    };
    for (std::uint64_t seq = 0; seq < 50; ++seq)
      wire.feed(net::chunk_to_frames(1, seq, ramp_chunk(8))[0], emit);
    wire.flush(emit);
    return std::pair(out, wire.stats());
  };
  const auto [a, sa] = run(42);
  const auto [b, sb] = run(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_EQ(sa.dropped, sb.dropped);
  EXPECT_EQ(sa.delivered, sb.delivered);

  const auto [c, sc] = run(43);
  (void)sc;
  bool different = c.size() != a.size();
  for (std::size_t i = 0; !different && i < c.size(); ++i)
    different = c[i] != a[i];
  EXPECT_TRUE(different) << "different seeds produced identical fault plans";
}

TEST(WireFault, StatsReconcileWithEmissions) {
  net::WireFaultSpec spec;
  spec.seed = 7;
  spec.drop_prob = 0.3;
  spec.duplicate_prob = 0.3;
  net::FaultyWire wire(spec);
  std::size_t emitted = 0;
  const auto emit = [&](std::vector<std::byte>&&) { ++emitted; };
  for (std::uint64_t seq = 0; seq < 200; ++seq)
    wire.feed(net::chunk_to_frames(1, seq, ramp_chunk(4))[0], emit);
  wire.flush(emit);
  const auto& s = wire.stats();
  EXPECT_EQ(s.frames_in, 200u);
  EXPECT_EQ(s.delivered, emitted);
  EXPECT_EQ(s.delivered, s.frames_in - s.dropped + s.duplicated);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_GT(s.duplicated, 0u);
}

TEST(WireFault, ReorderHoldsUntilFlush) {
  net::WireFaultSpec spec;
  spec.reorder_prob = 1.0;
  net::FaultyWire wire(spec);
  std::vector<std::uint64_t> order;
  const auto emit = [&](std::vector<std::byte>&& f) {
    FrameView v;
    ASSERT_EQ(net::parse_frame(f, v), ParseStatus::kOk);
    order.push_back(v.header.chunk_seq);
  };
  for (std::uint64_t seq = 0; seq < 3; ++seq)
    wire.feed(net::chunk_to_frames(1, seq, ramp_chunk(2))[0], emit);
  wire.flush(emit);
  // Every frame swaps with its successor: 0 held, 1 sent then 0, 2 held
  // until flush.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(wire.stats().reordered, 2u);
}

TEST(WireFault, ValidatesProbabilities) {
  net::WireFaultSpec spec;
  spec.drop_prob = 1.5;
  EXPECT_THROW(net::FaultyWire{spec}, InvalidArgument);
}

TEST(WireFault, FaultedFramesStillResolveTyped) {
  // Truncated/corrupted frames must parse to typed rejections — and the
  // survivors must reassemble under the conservation law.
  net::WireFaultSpec spec;
  spec.seed = 99;
  spec.truncate_prob = 0.3;
  spec.corrupt_prob = 0.3;
  net::FaultyWire wire(spec);
  Collector col;
  net::Demux demux({}, col.sink(), col.end_sink());
  std::size_t rejects = 0;
  const auto emit = [&](std::vector<std::byte>&& f) {
    FrameView v;
    if (net::parse_frame(f, v) == ParseStatus::kOk)
      demux.feed(v);
    else
      ++rejects;
  };
  for (std::uint64_t seq = 0; seq < 100; ++seq)
    wire.feed(net::chunk_to_frames(1, seq, ramp_chunk(16))[0], emit);
  wire.flush(emit);
  demux.flush();
  EXPECT_GT(rejects, 0u);
  EXPECT_GT(col.items.size(), 0u);
  expect_conservation(demux.stats());
  EXPECT_EQ(demux.stats().frames_in_flight, 0u);
}

}  // namespace
}  // namespace wivi
