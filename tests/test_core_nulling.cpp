// Tests for the nulling engine (paper §4, Alg. 1) against a controlled mock
// link with known channels and imperfections. The full hardware path is
// covered in test_sim / test_integration.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/core/nulling.hpp"
#include "src/phy/link.hpp"

namespace wivi::core {
namespace {

/// Minimal flat-fading 2x1 link: y[k] = c0 h1 x0[k] + c1 h2 x1[k] + noise.
/// The chain responses c0/c1 take a small deterministic hit whenever the TX
/// gain changes, which is exactly the imperfection iterative nulling is
/// designed to clean up.
class MockLink final : public phy::SubcarrierLink {
 public:
  MockLink(cdouble h1, cdouble h2, double noise_power,
           double gain_change_sigma, std::uint64_t seed)
      : h1_(h1),
        h2_(h2),
        noise_power_(noise_power),
        gain_change_sigma_(gain_change_sigma),
        rng_(seed) {}

  const phy::OfdmModem& modem() const override { return modem_; }

  CVec transceive(CSpan x0, CSpan x1) override {
    const auto n = static_cast<std::size_t>(modem_.num_subcarriers());
    const double g = db_to_amp(tx_gain_db_) * db_to_amp(rx_gain_db_);
    CVec y(n, cdouble{0.0, 0.0});
    for (int k : modem_.used_subcarriers()) {
      const auto i = static_cast<std::size_t>(k);
      y[i] = g * (c0_ * h1_ * x0[i] + c1_ * h2_ * x1[i]) +
             rng_.complex_gaussian(noise_power_);
    }
    now_ += modem_.symbol_duration_sec();
    return y;
  }

  bool last_rx_saturated() const override { return false; }

  void set_tx_gain_db(double gain_db) override {
    if (gain_db != tx_gain_db_ && gain_change_sigma_ > 0.0) {
      // Operating-point shift on both chains.
      c0_ = cdouble{1.0, 0.0} +
            rng_.complex_gaussian(gain_change_sigma_ * gain_change_sigma_);
      c1_ = cdouble{1.0, 0.0} +
            rng_.complex_gaussian(gain_change_sigma_ * gain_change_sigma_);
    }
    tx_gain_db_ = gain_db;
  }
  double tx_gain_db() const override { return tx_gain_db_; }
  void set_rx_gain_db(double gain_db) override { rx_gain_db_ = gain_db; }
  double rx_gain_db() const override { return rx_gain_db_; }
  double now() const override { return now_; }

  cdouble c0() const { return c0_; }
  cdouble c1() const { return c1_; }

 private:
  phy::OfdmModem modem_;
  cdouble h1_;
  cdouble h2_;
  cdouble c0_{1.0, 0.0};
  cdouble c1_{1.0, 0.0};
  double noise_power_;
  double gain_change_sigma_;
  double tx_gain_db_ = 0.0;
  double rx_gain_db_ = 0.0;
  double now_ = 0.0;
  Rng rng_;
};

TEST(Nulling, IdealLinkNullsToNumericalNoise) {
  MockLink link({0.02, -0.013}, {0.017, 0.009}, /*noise=*/0.0,
                /*gain_change=*/0.0, 1);
  const Nuller nuller;
  const Nuller::Result r = nuller.run(link);
  // Perfect estimates: residual is numerical-precision deep.
  EXPECT_GT(r.nulling_db, 100.0);
}

TEST(Nulling, EstimatesChannelsAccuratelyUnderNoise) {
  const cdouble h1{0.02, -0.013};
  const cdouble h2{0.017, 0.009};
  MockLink link(h1, h2, 1e-12, 0.0, 2);
  const Nuller nuller;
  const Nuller::Result r = nuller.run(link);
  const phy::OfdmModem modem;
  const cdouble e1 = modem.combine_subcarriers(r.h1);
  const cdouble e2 = modem.combine_subcarriers(r.h2);
  EXPECT_LT(std::abs(e1 - h1) / std::abs(h1), 0.01);
  EXPECT_LT(std::abs(e2 - h2) / std::abs(h2), 0.01);
}

TEST(Nulling, PrecoderSatisfiesNullCondition) {
  MockLink link({0.02, -0.013}, {0.017, 0.009}, 1e-13, 0.0, 3);
  const Nuller nuller;
  const Nuller::Result r = nuller.run(link);
  const phy::OfdmModem modem;
  for (int k : modem.used_subcarriers()) {
    const auto i = static_cast<std::size_t>(k);
    // h1 + p h2 ~ 0 with the final refined estimates.
    const cdouble res = r.h1[i] + r.p[i] * r.h2[i];
    EXPECT_LT(std::abs(res), 1e-9);
  }
}

TEST(Nulling, IterativeNullingRecoversFromGainChangePerturbation) {
  // With a 1.5% operating-point shift at the power boost, initial nulling
  // alone leaves ~ -36 dB of flash; iterative nulling must dig well deeper
  // (paper §4.1.3).
  MockLink link({0.02, -0.013}, {0.017, 0.009}, 1e-14, 0.015, 4);
  const Nuller nuller;
  const Nuller::Result r = nuller.run(link);
  EXPECT_GT(r.iterations_used, 0);
  // Final residual is at least 15 dB below the post-boost initial residual.
  EXPECT_LT(r.residual_power_db, r.initial_residual_power_db - 15.0);
}

TEST(Nulling, ResidualTrajectoryIsMonotoneDecreasing) {
  MockLink link({0.02, -0.013}, {0.017, 0.009}, 1e-14, 0.015, 5);
  const Nuller nuller;
  const Nuller::Result r = nuller.run(link);
  ASSERT_GE(r.residual_trajectory_db.size(), 2u);
  for (std::size_t i = 1; i < r.residual_trajectory_db.size(); ++i) {
    // Once the residual reaches the numerical floor it may bounce around;
    // only require monotone descent above it.
    if (r.residual_trajectory_db[i - 1] < -150.0) break;
    EXPECT_LE(r.residual_trajectory_db[i], r.residual_trajectory_db[i - 1] + 1.0)
        << "iteration " << i;
  }
}

TEST(Nulling, Lemma411GeometricDecayFormula) {
  // |h_res^(i)| = |h_res^(0)| * ratio^i.
  EXPECT_DOUBLE_EQ(lemma_4_1_1_residual(1.0, 0.1, 0), 1.0);
  EXPECT_DOUBLE_EQ(lemma_4_1_1_residual(1.0, 0.1, 3), 1e-3);
  EXPECT_NEAR(lemma_4_1_1_residual(0.5, 0.2, 2), 0.02, 1e-12);
}

TEST(Nulling, Lemma411RateMatchesSimulatedIterations) {
  // Inject a pure, known relative error in h2 and no other impairment;
  // the per-iteration residual shrink must match |Delta2 / h2| within a
  // factor accounted for by the first-order Taylor approximation.
  const double rel_err = 0.02;
  MockLink link({0.02, 0.0}, {0.017, 0.0}, 0.0, 0.0, 6);
  Nuller::Config cfg;
  cfg.max_iterations = 4;
  cfg.min_improvement_db = 0.0;  // run all iterations
  const Nuller nuller(cfg);
  // Run once cleanly to grab internal machinery via the public result; here
  // we exercise the formula itself against the observed trajectory of a
  // perturbed run instead (MockLink with gain-change sigma ~ rel_err).
  MockLink perturbed({0.02, 0.0}, {0.017, 0.0}, 0.0, rel_err, 7);
  const Nuller::Result r = nuller.run(perturbed);
  ASSERT_GE(r.residual_trajectory_db.size(), 3u);
  const double drop_db =
      r.residual_trajectory_db[0] - r.residual_trajectory_db.back();
  // Geometric decay at ratio ~rel_err predicts >= 30 dB per iteration pair;
  // we only require clear exponential improvement, not exact match.
  EXPECT_GT(drop_db, 25.0);
}

TEST(Nulling, PowerBoostIsAppliedToLink) {
  MockLink link({0.02, -0.01}, {0.015, 0.01}, 1e-13, 0.0, 8);
  Nuller::Config cfg;
  cfg.tx_boost_db = 12.0;
  cfg.rx_boost_db = 20.0;
  const Nuller nuller(cfg);
  (void)nuller.run(link);
  EXPECT_DOUBLE_EQ(link.tx_gain_db(), 12.0);
  EXPECT_DOUBLE_EQ(link.rx_gain_db(), 20.0);
}

TEST(Nulling, NoiseBoundsAchievableDepth) {
  // Estimation noise must cost nulling depth relative to a noiseless run.
  MockLink clean({0.02, -0.013}, {0.017, 0.009}, 0.0, 0.0, 9);
  MockLink noisy({0.02, -0.013}, {0.017, 0.009}, 1e-6, 0.0, 9);
  const Nuller nuller;
  const Nuller::Result rc = nuller.run(clean);
  const Nuller::Result rn = nuller.run(noisy);
  EXPECT_GT(rn.nulling_db, 10.0);
  EXPECT_LT(rn.nulling_db, rc.nulling_db - 20.0);
}

TEST(Nulling, ConfigValidation) {
  Nuller::Config bad;
  bad.symbols_per_estimate = 0;
  EXPECT_THROW(Nuller{bad}, InvalidArgument);
  Nuller::Config neg;
  neg.tx_boost_db = -1.0;
  EXPECT_THROW(Nuller{neg}, InvalidArgument);
}

}  // namespace
}  // namespace wivi::core
