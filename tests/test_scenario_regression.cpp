// Golden-scenario regression suite: ~10 named generated worlds with pinned
// accuracy scores, plus reduced regressions for the two tracker edge cases
// the first full sweep surfaced (stalled-mover coast drift, near-parallel
// crossing id churn).
//
// The pins are tolerance bands, not exact values: one binary reproduces its
// own scores bit-identically (that is what scripts/check_accuracy.py gates),
// but this suite also runs under the ASan/UBSan CI build, whose codegen may
// round the MUSIC eigendecomposition differently. The bands are tight
// enough to catch any real behavioural regression (a lost track, a new
// ghost, an id churn relapse) and wide enough to absorb build-flag jitter.
//
// To regenerate the pinned values after an intentional pipeline change,
// run: ./test_scenario_regression --gtest_also_run_disabled_tests
//        --gtest_filter='*PrintGolden*'
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/tracker.hpp"
#include "src/sim/evaluate.hpp"
#include "src/sim/scenario.hpp"
#include "src/track/kalman.hpp"
#include "src/track/multi_tracker.hpp"

namespace wivi::sim {
namespace {

using track::MultiTargetTracker;
using track::TrackState;

// ------------------------------------------------------- Golden catalog ---

ScenarioMover ramp(double start, double end, double amp = 1.0,
                   double phase = 0.0) {
  ScenarioMover m;
  m.mobility = MobilityModel::kSpeedRamp;
  m.start_speed_mps = start;
  m.end_speed_mps = end;
  m.amplitude = amp;
  m.phase_rad = phase;
  return m;
}

/// One golden world: a named spec, its seed, and the pinned scores.
struct Golden {
  ScenarioSpec spec;
  std::uint64_t seed = 0;
  std::optional<fault::FaultSpec> faults;

  double ospa_deg = 0.0;
  double continuity = 0.0;
  double purity = 0.0;
  int id_switches = 0;
  int ghost_tracks = 0;
  double count_accuracy = 0.0;
};

Golden golden_walker() {
  Golden g;
  g.spec.name = "golden-walker";
  g.spec.duration_sec = 8.0;
  ScenarioMover m;
  m.mobility = MobilityModel::kRandomWalk;
  m.walk_speed_mps = 0.9;
  g.spec.movers.push_back(m);
  g.seed = 7;
  g.ospa_deg = 13.738;
  g.continuity = 0.864;
  g.purity = 1.000;
  g.id_switches = 3;
  g.ghost_tracks = 0;
  g.count_accuracy = 0.247;
  return g;
}

Golden golden_crossing_pair() {
  Golden g;
  g.spec.name = "golden-crossing-pair";
  g.spec.duration_sec = 8.0;
  g.spec.movers.push_back(ramp(0.20, 0.88));
  g.spec.movers.push_back(ramp(0.90, 0.22, 0.85, 2.1));
  g.seed = 1001;
  g.ospa_deg = 0.867;
  g.continuity = 0.974;
  g.purity = 0.979;
  g.id_switches = 4;
  g.ghost_tracks = 0;
  g.count_accuracy = 0.969;
  return g;
}

Golden golden_near_parallel() {
  // The id-churn stress case: both movers sweep upward through almost the
  // same angles, merging into one MUSIC peak for ~3.5 s mid-trace.
  Golden g;
  g.spec.name = "golden-near-parallel";
  g.spec.duration_sec = 8.0;
  g.spec.movers.push_back(ramp(0.26, 0.88));
  g.spec.movers.push_back(ramp(0.36, 0.78, 0.85, 2.1));
  g.seed = 42;
  g.ospa_deg = 1.341;
  g.continuity = 0.979;
  g.purity = 0.568;
  g.id_switches = 2;
  g.ghost_tracks = 0;
  g.count_accuracy = 0.979;
  return g;
}

Golden golden_near_dc() {
  // A slow mover that starts inside the DC-exclusion band (invisible by
  // physics) and emerges from it mid-trace.
  Golden g;
  g.spec.name = "golden-near-dc";
  g.spec.duration_sec = 8.0;
  g.spec.movers.push_back(ramp(0.05, 0.50));
  g.seed = 13;
  g.ospa_deg = 1.089;
  g.continuity = 0.952;
  g.purity = 1.000;
  g.id_switches = 0;
  g.ghost_tracks = 0;
  g.count_accuracy = 0.969;
  return g;
}

Golden golden_clutter_only() {
  // No truth targets at all: every confirmed track is a ghost.
  Golden g;
  g.spec.name = "golden-clutter-only";
  g.spec.duration_sec = 8.0;
  ClutterSpec fan;
  fan.kind = ClutterKind::kFan;
  fan.pos = {1.8, 2.2};
  fan.amplitude = 0.18;
  fan.rate_hz = 2.5;
  g.spec.clutter.push_back(fan);
  ClutterSpec pet;
  pet.kind = ClutterKind::kPet;
  pet.pos = {-1.5, 3.0};
  pet.amplitude = 0.12;
  pet.extent_m = 0.4;
  g.spec.clutter.push_back(pet);
  g.seed = 99;
  g.ospa_deg = 20.000;
  g.continuity = 1.000;
  g.purity = 1.000;
  g.id_switches = 0;
  g.ghost_tracks = 2;
  g.count_accuracy = 0.021;
  return g;
}

Golden golden_high_count() {
  Golden g;
  g.spec.name = "golden-high-count";
  g.spec.duration_sec = 8.0;
  g.spec.movers.push_back(ramp(0.75, 0.75, 1.0, 0.0));
  g.spec.movers.push_back(ramp(-0.60, -0.60, 0.9, 1.3));
  g.spec.movers.push_back(ramp(0.45, 0.45, 0.8, 2.6));
  g.spec.movers.push_back(ramp(-0.82, -0.82, 0.7, 3.9));
  g.seed = 17;
  g.ospa_deg = 0.628;
  g.continuity = 0.979;
  g.purity = 1.000;
  g.id_switches = 0;
  g.ghost_tracks = 0;
  g.count_accuracy = 0.979;
  return g;
}

Golden golden_staggered() {
  Golden g;
  g.spec.name = "golden-staggered";
  g.spec.duration_sec = 8.0;
  ScenarioMover a = ramp(0.70, 0.70);
  a.exit_sec = 5.0;
  ScenarioMover b = ramp(-0.65, -0.65, 0.9, 1.3);
  b.enter_sec = 1.5;
  ScenarioMover c = ramp(0.50, 0.50, 0.8, 2.6);
  c.enter_sec = 3.0;
  c.exit_sec = 7.0;
  g.spec.movers.push_back(a);
  g.spec.movers.push_back(b);
  g.spec.movers.push_back(c);
  g.seed = 23;
  g.ospa_deg = 4.230;
  g.continuity = 0.974;
  g.purity = 1.000;
  g.id_switches = 0;
  g.ghost_tracks = 0;
  g.count_accuracy = 0.577;
  return g;
}

Golden golden_stall() {
  // The count-hysteresis stress case: a waypoint mover walks in, pauses
  // 2.5 s (fades into the DC band), then walks on.
  Golden g;
  g.spec.name = "golden-stall";
  g.spec.duration_sec = 8.0;
  ScenarioMover m;
  m.mobility = MobilityModel::kWaypoint;
  m.start = {-2.0, 2.0};
  m.waypoints.push_back({{1.5, 3.2}, 1.0, 2.5});
  m.waypoints.push_back({{-1.0, 4.2}, 1.0, 0.0});
  m.amplitude = 0.9;
  m.phase_rad = 5.1;
  g.spec.movers.push_back(m);
  g.seed = 99;
  g.ospa_deg = 12.080;
  g.continuity = 0.875;
  g.purity = 1.000;
  g.id_switches = 1;
  g.ghost_tracks = 0;
  g.count_accuracy = 0.546;
  return g;
}

Golden golden_interferer_burst() {
  Golden g;
  g.spec.name = "golden-interferer-burst";
  g.spec.duration_sec = 8.0;
  g.spec.movers.push_back(ramp(0.25, 0.85));
  InterfererSpec intf;
  intf.burst_prob = 0.35;
  intf.burst_sec = 0.4;
  intf.power = 4e-3;
  g.spec.interferer = intf;
  g.seed = 31;
  g.ospa_deg = 0.613;
  g.continuity = 0.979;
  g.purity = 1.000;
  g.id_switches = 0;
  g.ghost_tracks = 0;
  g.count_accuracy = 0.979;
  return g;
}

Golden golden_faulted_walker() {
  Golden g;
  g.spec.name = "golden-faulted-walker";
  g.spec.duration_sec = 8.0;
  ScenarioMover m;
  m.mobility = MobilityModel::kRandomWalk;
  m.walk_speed_mps = 0.85;
  g.spec.movers.push_back(m);
  g.seed = 57;
  fault::FaultSpec f;
  f.seed = 0xFA17;
  f.drop_prob = 0.05;
  f.duplicate_prob = 0.03;
  f.reorder_prob = 0.02;
  f.gap_prob = 0.03;
  f.corrupt_prob = 0.04;
  f.corrupt_burst = 4;
  f.silence_chunks = 3;
  g.faults = f;
  g.ospa_deg = 16.064;
  g.continuity = 0.732;
  g.purity = 1.000;
  g.id_switches = 3;
  g.ghost_tracks = 0;
  g.count_accuracy = 0.356;
  return g;
}

std::vector<Golden> golden_catalog() {
  return {golden_walker(),          golden_crossing_pair(),
          golden_near_parallel(),   golden_near_dc(),
          golden_clutter_only(),    golden_high_count(),
          golden_staggered(),       golden_stall(),
          golden_interferer_burst(), golden_faulted_walker()};
}

ScenarioScores score_of(const Golden& g) {
  EvaluatorConfig cfg;
  cfg.faults = g.faults;
  return Evaluator(cfg).score(g.spec, g.seed);
}

// Tolerance bands (see the file comment): behavioural, not bit-exact.
void expect_pinned(const Golden& g) {
  const ScenarioScores s = score_of(g);
  SCOPED_TRACE(g.spec.name);
  EXPECT_NEAR(s.ospa_deg, g.ospa_deg, 1.0);
  EXPECT_NEAR(s.continuity, g.continuity, 0.08);
  EXPECT_NEAR(s.purity, g.purity, 0.08);
  EXPECT_LE(std::abs(s.id_switches - g.id_switches), 2);
  EXPECT_LE(std::abs(s.ghost_tracks - g.ghost_tracks), 1);
  EXPECT_NEAR(s.count_accuracy, g.count_accuracy, 0.10);
}

}  // namespace
}  // namespace wivi::sim

namespace wivi::sim {
namespace {

TEST(GoldenScenario, Walker) { expect_pinned(golden_walker()); }
TEST(GoldenScenario, CrossingPair) { expect_pinned(golden_crossing_pair()); }
TEST(GoldenScenario, NearParallel) { expect_pinned(golden_near_parallel()); }
TEST(GoldenScenario, NearDc) { expect_pinned(golden_near_dc()); }
TEST(GoldenScenario, ClutterOnly) { expect_pinned(golden_clutter_only()); }
TEST(GoldenScenario, HighCount) { expect_pinned(golden_high_count()); }
TEST(GoldenScenario, Staggered) { expect_pinned(golden_staggered()); }
TEST(GoldenScenario, Stall) { expect_pinned(golden_stall()); }
TEST(GoldenScenario, InterfererBurst) {
  expect_pinned(golden_interferer_burst());
}
TEST(GoldenScenario, FaultedWalker) {
  const Golden g = golden_faulted_walker();
  expect_pinned(g);
  // Accuracy under faults is only honest if corruption surfaced as typed
  // rejections, never as silently wrong samples.
  const ScenarioScores s = score_of(g);
  EXPECT_TRUE(s.faulted);
  EXPECT_GE(s.chunks_rejected, 1);
}

// --------------------------------------- Tracker edge-case regressions ---
//
// Reduced reproductions of the two pathologies the first full sweep
// surfaced, pinned against the legacy configuration that exhibited them.

/// Scripted angle-time image: column c holds dB bumps at scripted[c] over
/// a unit floor, 0.1 s per column (test_track_lifecycle's helper).
core::AngleTimeImage scripted_image(
    const std::vector<std::vector<std::pair<double, double>>>& scripted) {
  core::AngleTimeImage img;
  img.angles_deg = core::angle_grid_deg(1.0);
  for (std::size_t c = 0; c < scripted.size(); ++c) {
    RVec col(img.angles_deg.size(), 1.0);
    for (const auto& [angle, db] : scripted[c]) {
      const auto idx = static_cast<std::size_t>(std::lround(angle + 90.0));
      col[idx] = std::pow(10.0, db / 10.0);
    }
    img.columns.push_back(std::move(col));
    img.model_orders.push_back(1);
    img.times_sec.push_back(0.1 * static_cast<double>(c));
  }
  return img;
}

TEST(TrackerEdgeCase, DampVelocityScalesVelocityStateOnly) {
  track::AngleKalman k(track::KalmanConfig{}, 10.0);
  k.predict(0.1);
  k.update(14.0);  // pulls the velocity state away from zero
  ASSERT_NE(k.velocity_dps(), 0.0);
  const double angle = k.angle_deg();
  const double vel = k.velocity_dps();
  k.damp_velocity(0.5);
  EXPECT_DOUBLE_EQ(k.angle_deg(), angle);
  EXPECT_DOUBLE_EQ(k.velocity_dps(), vel * 0.5);
  EXPECT_THROW(k.damp_velocity(0.0), InvalidArgument);
  EXPECT_THROW(k.damp_velocity(1.5), InvalidArgument);
}

TEST(TrackerEdgeCase, CoastDampingParksStalledPrediction) {
  // A target sweeps 20 -> 58 deg at 20 deg/s, then vanishes (stalls into
  // the DC band) for 30 columns. Legacy undamped coasting extrapolates the
  // stale 20 deg/s the whole way; the damped default decays the velocity
  // after coast_damp_after columns so the prediction parks.
  std::vector<std::vector<std::pair<double, double>>> script;
  for (int c = 0; c < 20; ++c)
    script.push_back({{20.0 + 2.0 * c, 15.0}});
  for (int c = 0; c < 30; ++c) script.push_back({});
  const core::AngleTimeImage img = scripted_image(script);

  MultiTargetTracker::Config damped;
  damped.max_coast_columns = 40;  // outlast the scripted fade
  MultiTargetTracker::Config legacy = damped;
  legacy.coast_velocity_damping = 1.0;  // the pre-fix lifecycle
  legacy.coast_damp_after = 0;

  const auto final_state = [&](const MultiTargetTracker::Config& cfg) {
    MultiTargetTracker tracker(cfg);
    for (std::size_t t = 0; t < img.num_times(); ++t) tracker.step(img, t);
    const auto& snaps = tracker.snapshots();
    EXPECT_EQ(snaps.size(), 1u);
    return snaps.empty() ? track::TrackSnapshot{} : snaps.front();
  };

  const track::TrackSnapshot d = final_state(damped);
  const track::TrackSnapshot l = final_state(legacy);
  // Legacy runs away: ~58 + 20 deg/s * 3 s of coasting.
  EXPECT_GT(l.angle_deg, 95.0);
  EXPECT_GT(l.velocity_dps, 15.0);
  // Damped parks: the velocity decays to ~0 and the prediction stays
  // within about a gate-width of the fade point.
  EXPECT_LT(d.angle_deg, 80.0);
  EXPECT_NEAR(d.velocity_dps, 0.0, 0.5);
  EXPECT_EQ(d.state, TrackState::kCoasting);
}

TEST(TrackerEdgeCase, OcclusionForgivenessSurvivesNearParallelMerge) {
  // The golden-near-parallel world: two movers merge into one MUSIC peak
  // for ~45 columns mid-trace. With occlusion forgiveness the hidden
  // track coasts through the merge and re-acquires its mover on the far
  // side; the legacy lifecycle exhausts its coast budget mid-merge, kills
  // the track, and re-births the mover under a fresh id.
  const Golden g = golden_near_parallel();
  const GeneratedScenario sc = generate_scenario(g.spec, g.seed);
  const track::TraceTrackResult run = track::track_trace(sc.h);

  const auto confirmed_count = [](const std::vector<track::TrackHistory>& hs) {
    int n = 0;
    for (const track::TrackHistory& h : hs) n += h.confirmed_ever;
    return n;
  };

  // Default (occlusion-aware): one track per mover, nothing reborn.
  EXPECT_EQ(confirmed_count(run.histories), 2);

  MultiTargetTracker::Config legacy;
  legacy.max_occluded_columns = 0;  // every miss consumes coast budget
  legacy.coast_velocity_damping = 1.0;
  const auto legacy_histories = track::track_image(run.image, legacy);
  EXPECT_GE(confirmed_count(legacy_histories), 3);
}

TEST(GoldenScenario, DISABLED_PrintGoldenScores) {
  // Regeneration aid, not a test: prints the current scores of every
  // golden world in the catalog order.
  for (const Golden& g : golden_catalog()) {
    const ScenarioScores s = score_of(g);
    std::printf(
        "%-24s ospa=%.3f cont=%.3f pur=%.3f sw=%d gh=%d cacc=%.3f "
        "cmae=%.3f rej=%d\n",
        s.name.c_str(), s.ospa_deg, s.continuity, s.purity, s.id_switches,
        s.ghost_tracks, s.count_accuracy, s.count_mae, s.chunks_rejected);
  }
}

}  // namespace
}  // namespace wivi::sim
