// Unit tests for the wivi::track building blocks: the shared floor-relative
// peak extractor, the per-column multi-peak detector, the constant-velocity
// Kalman filter, and the gated NN / Hungarian association layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/random.hpp"
#include "src/dsp/peaks.hpp"
#include "src/track/assignment.hpp"
#include "src/track/detect.hpp"
#include "src/track/kalman.hpp"

namespace wivi {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------- find_peaks_over_floor ---

TEST(FloorPeaks, FindsPeaksAboveFloorOnly) {
  const RVec x{0, 1, 8, 1, 0, 2, 3, 2, 0, 1, 9, 1};
  dsp::FloorPeakOptions opts;
  opts.min_over_floor = 5.0;
  const auto peaks = dsp::find_peaks_over_floor(x, /*floor=*/1.0, opts);
  ASSERT_EQ(peaks.size(), 2u);  // 8 and 9 clear floor+5; the 3 does not
  EXPECT_EQ(peaks[0].index, 2u);
  EXPECT_EQ(peaks[1].index, 10u);
}

TEST(FloorPeaks, EdgesAndMaskBoundariesCanPeak) {
  const double ninf = -kInf;
  // Global maximum at index 0 (an array edge) and a second maximum right
  // after a masked run: both must be reported.
  const RVec x{9, 5, 1, ninf, ninf, 7, 4, 1};
  dsp::FloorPeakOptions opts;
  opts.min_over_floor = 2.0;
  const auto peaks = dsp::find_peaks_over_floor(x, 0.0, opts);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].index, 0u);
  EXPECT_EQ(peaks[1].index, 5u);
}

TEST(FloorPeaks, MaskedEntriesNeverPeak) {
  const RVec x{0, 1, -kInf, 1, 0};
  dsp::FloorPeakOptions opts;
  opts.min_over_floor = 0.5;
  for (const auto& p : dsp::find_peaks_over_floor(x, 0.0, opts))
    EXPECT_NE(p.index, 2u);
}

TEST(FloorPeaks, MinDistanceKeepsTallerPeak) {
  const RVec x{0, 5, 0, 6, 0, 0, 0, 4, 0};
  dsp::FloorPeakOptions opts;
  opts.min_over_floor = 1.0;
  opts.min_distance = 4;
  const auto peaks = dsp::find_peaks_over_floor(x, 0.0, opts);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].index, 3u);  // 6 beats the 5 two bins away
  EXPECT_EQ(peaks[1].index, 7u);
}

TEST(FloorPeaks, MaxPeaksKeepsTallest) {
  const RVec x{0, 3, 0, 9, 0, 5, 0, 7, 0};
  dsp::FloorPeakOptions opts;
  opts.min_over_floor = 1.0;
  opts.max_peaks = 2;
  const auto peaks = dsp::find_peaks_over_floor(x, 0.0, opts);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].index, 3u);  // 9 and 7, index-sorted
  EXPECT_EQ(peaks[1].index, 7u);
}

// --------------------------------------------------------- ColumnDetector ---

/// Build a one-column image with dB bumps at the requested angles over a
/// unit floor (column_db is median-referenced, so floor maps to ~0 dB).
core::AngleTimeImage image_with_bumps(
    const std::vector<std::pair<double, double>>& angle_db) {
  core::AngleTimeImage img;
  img.angles_deg = core::angle_grid_deg(1.0);
  RVec col(img.angles_deg.size(), 1.0);
  for (const auto& [angle, db] : angle_db) {
    const auto idx = static_cast<std::size_t>(std::lround(angle + 90.0));
    // column_db computes 10*log10(value / median).
    col[idx] = std::pow(10.0, db / 10.0);
  }
  img.columns.push_back(col);
  img.model_orders.push_back(1);
  img.times_sec.push_back(0.0);
  return img;
}

TEST(ColumnDetector, FindsMultipleMoversAndSkipsDc) {
  // Movers at -35 and +50, plus a strong DC residual at 0 that must not
  // be reported.
  const auto img = image_with_bumps({{-35.0, 20.0}, {0.0, 40.0}, {50.0, 15.0}});
  track::ColumnDetector detector;
  const auto dets = detector.detect(img, 0);
  ASSERT_EQ(dets.size(), 2u);
  EXPECT_NEAR(dets[0].angle_deg, -35.0, 0.5);
  EXPECT_NEAR(dets[1].angle_deg, 50.0, 0.5);
  EXPECT_GT(dets[0].strength_db, dets[1].strength_db);
}

TEST(ColumnDetector, DcShoulderDoesNotFakeAMover) {
  // A wide DC lobe decaying monotonically out to +/-20 degrees: no mover,
  // so no detections — the lobe's shoulder at the exclusion boundary must
  // not be reported as a target.
  core::AngleTimeImage img;
  img.angles_deg = core::angle_grid_deg(1.0);
  RVec col(img.angles_deg.size(), 1.0);
  for (std::size_t a = 0; a < img.angles_deg.size(); ++a) {
    const double d = std::abs(img.angles_deg[a]);
    if (d <= 20.0) col[a] = std::pow(10.0, (40.0 - 2.0 * d) / 10.0);
  }
  img.columns.push_back(col);
  img.model_orders.push_back(1);
  img.times_sec.push_back(0.0);
  track::ColumnDetector detector;
  EXPECT_TRUE(detector.detect(img, 0).empty());
}

TEST(ColumnDetector, RespectsDetectionBudget) {
  const auto img = image_with_bumps(
      {{-60.0, 10.0}, {-40.0, 14.0}, {20.0, 18.0}, {40.0, 16.0}, {60.0, 12.0}});
  track::ColumnDetector::Config cfg;
  cfg.max_detections = 3;
  const track::ColumnDetector detector(cfg);
  const auto dets = detector.detect(img, 0);
  ASSERT_EQ(dets.size(), 3u);
  // The three strongest (18, 16, 14 dB), angle-sorted.
  EXPECT_NEAR(dets[0].angle_deg, -40.0, 0.5);
  EXPECT_NEAR(dets[1].angle_deg, 20.0, 0.5);
  EXPECT_NEAR(dets[2].angle_deg, 40.0, 0.5);
}

// ------------------------------------------------------------ AngleKalman ---

TEST(AngleKalman, ConvergesToConstantVelocityTarget) {
  track::KalmanConfig cfg;
  track::AngleKalman kf(cfg, 10.0);
  const double dt = 0.08;
  const double velocity = 5.0;  // deg/s
  Rng rng(7);
  for (int k = 1; k <= 100; ++k) {
    kf.predict(dt);
    const double truth = 10.0 + velocity * dt * k;
    kf.update(truth + rng.gaussian(0.0, 0.5));
  }
  EXPECT_NEAR(kf.velocity_dps(), velocity, 1.0);
  EXPECT_NEAR(kf.angle_deg(), 10.0 + velocity * dt * 100, 1.0);
}

TEST(AngleKalman, PredictionCarriesThroughAGap) {
  track::KalmanConfig cfg;
  track::AngleKalman kf(cfg, 0.0);
  const double dt = 0.08;
  Rng rng(8);
  for (int k = 1; k <= 60; ++k) {
    kf.predict(dt);
    kf.update(8.0 * dt * k + rng.gaussian(0.0, 0.3));
  }
  // 12 columns of coasting: the estimate keeps moving at ~8 deg/s and the
  // uncertainty grows.
  const double var_before = kf.angle_variance();
  for (int k = 0; k < 12; ++k) kf.predict(dt);
  EXPECT_NEAR(kf.angle_deg(), 8.0 * dt * 72, 2.0);
  EXPECT_GT(kf.angle_variance(), var_before);
}

// ------------------------------------------------------------- assignment ---

/// Total cost of a row assignment (for optimality comparisons).
double total_cost(const track::CostMatrix& cost,
                  const std::vector<std::size_t>& match) {
  double sum = 0.0;
  for (std::size_t r = 0; r < match.size(); ++r)
    if (match[r] != track::kUnassigned) sum += cost.at(r, match[r]);
  return sum;
}

std::size_t num_matched(const std::vector<std::size_t>& match) {
  std::size_t n = 0;
  for (std::size_t m : match) n += m != track::kUnassigned;
  return n;
}

/// Brute-force optimal assignment: max matches first, then min cost.
std::pair<std::size_t, double> brute_force_best(const track::CostMatrix& cost) {
  const std::size_t rows = cost.rows(), cols = cost.cols();
  std::vector<std::size_t> perm(cols);
  std::iota(perm.begin(), perm.end(), 0u);
  std::size_t best_matches = 0;
  double best_cost = kInf;
  // Try every injective map of rows into column permutations (rows <= cols
  // assumed in tests using this helper).
  do {
    std::size_t matches = 0;
    double c = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      const double v = cost.at(r, perm[r]);
      if (std::isfinite(v)) {
        ++matches;
        c += v;
      }
    }
    if (matches > best_matches ||
        (matches == best_matches && c < best_cost)) {
      best_matches = matches;
      best_cost = c;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return {best_matches, best_cost};
}

TEST(Assignment, GreedySwapsWhereHungarianDoesNot) {
  // The classic trap: greedy grabs the cheap (0,0)=1 pair, forcing
  // (1,1)=100; Hungarian pays 2+3.
  track::CostMatrix cost(2, 2);
  cost.at(0, 0) = 1.0;
  cost.at(0, 1) = 3.0;
  cost.at(1, 0) = 2.0;
  cost.at(1, 1) = 100.0;
  EXPECT_TRUE(track::assignment_is_ambiguous(cost));
  const auto greedy = track::greedy_assign(cost);
  const auto optimal = track::hungarian_assign(cost);
  EXPECT_EQ(total_cost(cost, greedy), 101.0);
  EXPECT_EQ(total_cost(cost, optimal), 5.0);
  // assign() must dispatch to the Hungarian result here.
  EXPECT_EQ(track::assign(cost), optimal);
}

TEST(Assignment, UnambiguousFrameUsesGreedyAndMatchesHungarian) {
  // Two tracks, two detections, gates not overlapping: one feasible pair
  // each. Greedy is optimal and assign() takes that path.
  track::CostMatrix cost(2, 2);
  cost.at(0, 0) = 2.0;
  cost.at(1, 1) = 4.0;
  EXPECT_FALSE(track::assignment_is_ambiguous(cost));
  const auto match = track::assign(cost);
  EXPECT_EQ(match, track::greedy_assign(cost));
  EXPECT_EQ(match, track::hungarian_assign(cost));
  EXPECT_EQ(total_cost(cost, match), 6.0);
}

TEST(Assignment, GatingLeavesInfeasiblePairsUnmatched) {
  track::CostMatrix cost(3, 2);
  cost.at(0, 0) = 1.0;  // track 1 gated away from everything
  cost.at(2, 1) = 2.0;
  const auto match = track::hungarian_assign(cost);
  EXPECT_EQ(match[0], 0u);
  EXPECT_EQ(match[1], track::kUnassigned);
  EXPECT_EQ(match[2], 1u);
}

TEST(Assignment, HungarianMatchesBruteForceOnRandomProblems) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const auto rows = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const auto cols = static_cast<std::size_t>(rng.uniform_int(rows, 5));
    track::CostMatrix cost(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t j = 0; j < cols; ++j)
        if (rng.uniform() < 0.7) cost.at(r, j) = rng.uniform(0.0, 20.0);
    const auto match = track::hungarian_assign(cost);
    const auto [best_matches, best_cost] = brute_force_best(cost);
    ASSERT_EQ(num_matched(match), best_matches) << "trial " << trial;
    ASSERT_NEAR(total_cost(cost, match), best_cost, 1e-9) << "trial " << trial;
  }
}

TEST(Assignment, EmptyProblemsAreHandled) {
  const track::CostMatrix no_tracks(0, 3);
  EXPECT_TRUE(track::assign(no_tracks).empty());
  const track::CostMatrix no_dets(2, 0);
  const auto match = track::assign(no_dets);
  ASSERT_EQ(match.size(), 2u);
  EXPECT_EQ(match[0], track::kUnassigned);
  EXPECT_EQ(match[1], track::kUnassigned);
}

}  // namespace
}  // namespace wivi
