// Tests for gesture encode/decode (paper §6) and human counting
// (Eqs. 5.4/5.5, §7.4) on synthetic angle-time images.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/core/counting.hpp"
#include "src/core/gesture.hpp"
#include "src/core/isar.hpp"

namespace wivi::core {
namespace {

/// Build a synthetic image: baseline floor 1.0, a DC ridge at theta = 0,
/// plus caller-added Gaussian blobs.
struct ImageBuilder {
  AngleTimeImage img;
  explicit ImageBuilder(std::size_t num_times, double dt) {
    img.angles_deg = angle_grid_deg(1.0);
    img.columns.assign(num_times, RVec(img.angles_deg.size(), 1.0));
    img.model_orders.assign(num_times, 1);
    for (std::size_t t = 0; t < num_times; ++t) {
      img.times_sec.push_back(static_cast<double>(t) * dt);
      add_blob(t, 0.0, 60.0, 3.0);  // the DC line
    }
  }
  /// Add a Gaussian ridge at angle `theta0` in column t with linear power
  /// `snr` above the floor and width sigma degrees.
  void add_blob(std::size_t t, double theta0, double snr, double sigma) {
    for (std::size_t a = 0; a < img.angles_deg.size(); ++a) {
      const double d = (img.angles_deg[a] - theta0) / sigma;
      img.columns[t][a] += snr * std::exp(-0.5 * d * d);
    }
  }
};

// ------------------------------------------------------------ Encoding ---

TEST(GestureEncode, ZeroIsForwardThenBackward) {
  const GestureProfile profile;
  const Bit bits[] = {Bit::kZero};
  const auto steps = encode_message(bits, profile);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_TRUE(steps[0].forward);
  EXPECT_FALSE(steps[1].forward);
  EXPECT_GT(steps[1].start_sec, steps[0].start_sec);
}

TEST(GestureEncode, OneIsBackwardThenForward) {
  const GestureProfile profile;
  const Bit bits[] = {Bit::kOne};
  const auto steps = encode_message(bits, profile);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_FALSE(steps[0].forward);
  EXPECT_TRUE(steps[1].forward);
}

TEST(GestureEncode, GesturesAreComposable) {
  // §6.1 condition 1: each bit returns the subject to the start state, so
  // the net displacement of any message is zero (equal F and B counts).
  const GestureProfile profile;
  const Bit bits[] = {Bit::kZero, Bit::kOne, Bit::kOne, Bit::kZero};
  const auto steps = encode_message(bits, profile);
  ASSERT_EQ(steps.size(), 8u);
  int net = 0;
  for (const auto& s : steps) net += s.forward ? 1 : -1;
  EXPECT_EQ(net, 0);
}

TEST(GestureEncode, MessageDurationMatchesPaperTiming) {
  // §1.2 / §7.5: ~8.8 s for a 4-gesture message, 2.2 s +/- 0.4 s std per
  // gesture across subjects. Our defaults sit one std above the mean (the
  // inter-bit framing pause is deliberately generous, see GestureProfile).
  const GestureProfile profile;
  EXPECT_NEAR(profile.bit_duration_sec(), 2.2, 0.5);
  EXPECT_NEAR(message_duration_sec(4, profile), 8.8, 2.0);
}

TEST(GestureEncode, StepsDoNotOverlap) {
  const GestureProfile profile;
  const Bit bits[] = {Bit::kZero, Bit::kZero, Bit::kOne};
  const auto steps = encode_message(bits, profile);
  for (std::size_t i = 1; i < steps.size(); ++i)
    EXPECT_GE(steps[i].start_sec,
              steps[i - 1].start_sec + profile.step_duration_sec - 1e-9);
}

// ------------------------------------------------------------ Decoding ---

/// Paint a message onto a synthetic image: each step is a triangle of
/// energy sweeping out to +/-75 deg and back (Fig. 6-1).
AngleTimeImage paint_message(std::span<const Bit> bits, double snr_linear,
                             double dt = 0.08) {
  const GestureProfile profile;
  const auto steps = encode_message(bits, profile, /*t0=*/2.0);
  const double total =
      message_duration_sec(bits.size(), profile) + 6.0;
  const auto n = static_cast<std::size_t>(total / dt);
  ImageBuilder builder(n, dt);
  for (const auto& s : steps) {
    for (std::size_t t = 0; t < n; ++t) {
      const double now = static_cast<double>(t) * dt;
      const double tau = (now - s.start_sec) / profile.step_duration_sec;
      if (tau <= 0.0 || tau >= 1.0) continue;
      const double envelope = 1.0 - std::abs(2.0 * tau - 1.0);  // triangle
      const double theta = (s.forward ? +75.0 : -75.0) * envelope;
      if (std::abs(theta) < 14.0) continue;  // inside DC exclusion: no info
      builder.add_blob(t, theta, snr_linear * envelope, 4.0);
    }
  }
  return builder.img;
}

TEST(GestureDecode, AngleSignalSignFollowsSteps) {
  const Bit bits[] = {Bit::kZero};
  const AngleTimeImage img = paint_message(bits, 300.0);
  const GestureDecoder decoder;
  const RVec sig = decoder.angle_signal(img);
  // Forward half: positive excursion; backward half: negative.
  const double t_fwd = 2.0 + 0.45;   // mid forward step
  const double t_bwd = 2.0 + 0.9 + 0.2 + 0.45;
  const auto idx = [&](double t) {
    return static_cast<std::size_t>(t / (img.times_sec[1] - img.times_sec[0]));
  };
  EXPECT_GT(sig[idx(t_fwd)], 0.0);
  EXPECT_LT(sig[idx(t_bwd)], 0.0);
}

TEST(GestureDecode, DecodesSingleZeroBit) {
  const Bit bits[] = {Bit::kZero};
  const GestureDecoder decoder;
  const auto r = decoder.decode(paint_message(bits, 300.0));
  ASSERT_EQ(r.bits.size(), 1u);
  EXPECT_EQ(r.bits[0].value, Bit::kZero);
  EXPECT_GT(r.bits[0].snr_db, 3.0);
}

TEST(GestureDecode, DecodesSingleOneBit) {
  const Bit bits[] = {Bit::kOne};
  const GestureDecoder decoder;
  const auto r = decoder.decode(paint_message(bits, 300.0));
  ASSERT_EQ(r.bits.size(), 1u);
  EXPECT_EQ(r.bits[0].value, Bit::kOne);
}

TEST(GestureDecode, DecodesMultiBitMessage) {
  // The Fig. 6-1 sequence: F B B F = bits 0, 1.
  const Bit bits[] = {Bit::kZero, Bit::kOne};
  const GestureDecoder decoder;
  const auto r = decoder.decode(paint_message(bits, 300.0));
  ASSERT_EQ(r.bits.size(), 2u);
  EXPECT_EQ(r.bits[0].value, Bit::kZero);
  EXPECT_EQ(r.bits[1].value, Bit::kOne);
  EXPECT_EQ(r.unpaired_symbols, 0u);
}

TEST(GestureDecode, LongMessageRoundTrip) {
  const Bit bits[] = {Bit::kOne, Bit::kZero, Bit::kOne, Bit::kOne,
                      Bit::kZero, Bit::kZero, Bit::kOne, Bit::kZero};
  const GestureDecoder decoder;
  const auto r = decoder.decode(paint_message(bits, 300.0));
  ASSERT_EQ(r.bits.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(r.bits[i].value, bits[i]) << "bit " << i;
}

TEST(GestureDecode, WeakGestureIsErasedNotFlipped) {
  // §7.5: "Wi-Vi never mistook a '0' bit for a '1' bit or the inverse...
  // errors are erasure errors." Below the floor there is simply nothing to
  // detect: no bits, no flips.
  const Bit bits[] = {Bit::kZero, Bit::kOne};
  const GestureDecoder decoder;
  const auto r = decoder.decode(paint_message(bits, 0.02));
  for (const auto& b : r.bits) {
    // Anything decoded must be correct, in order.
    SUCCEED();
  }
  EXPECT_LE(r.bits.size(), 2u);
  // Key property: no wrong-valued bits. With two distinct bits painted,
  // a flip would show as kOne before kZero.
  if (r.bits.size() == 2) {
    EXPECT_EQ(r.bits[0].value, Bit::kZero);
    EXPECT_EQ(r.bits[1].value, Bit::kOne);
  }
}

TEST(GestureDecode, SnrScalesWithSignalStrength) {
  const Bit bits[] = {Bit::kZero};
  const GestureDecoder decoder;
  const auto strong = decoder.decode(paint_message(bits, 400.0));
  const auto weak = decoder.decode(paint_message(bits, 40.0));
  ASSERT_EQ(strong.bits.size(), 1u);
  ASSERT_EQ(weak.bits.size(), 1u);
  EXPECT_GT(strong.bits[0].snr_db, weak.bits[0].snr_db);
}

TEST(GestureDecode, MatchedOutputHasBpskShape) {
  // Fig. 6-3(a): after matched filtering, bit '0' gives + then - peaks.
  const Bit bits[] = {Bit::kZero};
  const GestureDecoder decoder;
  const auto r = decoder.decode(paint_message(bits, 300.0));
  ASSERT_EQ(r.symbols.size(), 2u);
  EXPECT_EQ(r.symbols[0].sign, +1);
  EXPECT_EQ(r.symbols[1].sign, -1);
}

// ------------------------------------------------------------- Counting ---

TEST(Counting, CentroidOfSymmetricColumnIsZero) {
  const RVec angles = angle_grid_deg(1.0);
  RVec col(angles.size(), 10.0);  // flat
  EXPECT_NEAR(spatial_centroid(col, angles), 0.0, 1e-9);
}

TEST(Counting, CentroidTracksOffsetBlob) {
  ImageBuilder b(1, 0.1);
  b.add_blob(0, 45.0, 500.0, 3.0);
  const RVec col = b.img.column_db(0);
  EXPECT_GT(spatial_centroid(col, b.img.angles_deg), 5.0);
}

TEST(Counting, VarianceGrowsWithNumberOfBlobs) {
  // The core §5.2 claim: more movers -> more spatial variance.
  auto make_img = [&](int blobs, std::uint64_t seed) {
    Rng rng(seed);
    ImageBuilder b(40, 0.1);
    for (std::size_t t = 0; t < 40; ++t) {
      for (int k = 0; k < blobs; ++k) {
        const double theta = rng.uniform(-80.0, 80.0);
        b.add_blob(t, theta, 200.0, 4.0);
      }
    }
    return b.img;
  };
  const double v0 = spatial_variance(make_img(0, 1));
  const double v1 = spatial_variance(make_img(1, 2));
  const double v2 = spatial_variance(make_img(2, 3));
  const double v3 = spatial_variance(make_img(3, 4));
  EXPECT_LT(v0, v1);
  EXPECT_LT(v1, v2);
  EXPECT_LT(v2, v3);
}

TEST(Counting, VarianceScaleIsTensOfMillions) {
  // Fig. 7-3's x-axis sanity: with dB weights over the 181-angle grid the
  // variance lands in the 1e6..1e8 range, as in the paper.
  Rng rng(5);
  ImageBuilder b(20, 0.1);
  for (std::size_t t = 0; t < 20; ++t)
    b.add_blob(t, rng.uniform(-70.0, 70.0), 200.0, 4.0);
  const double v = spatial_variance(b.img);
  EXPECT_GT(v, 1e5);
  EXPECT_LT(v, 5e8);
}

TEST(Counting, ClassifierLearnsThresholdsFromMeans) {
  VarianceClassifier clf;
  clf.train({{0, 10.0}, {0, 12.0}, {1, 30.0}, {1, 34.0}, {2, 60.0}, {2, 64.0}});
  ASSERT_TRUE(clf.trained());
  ASSERT_EQ(clf.thresholds().size(), 2u);
  EXPECT_NEAR(clf.thresholds()[0], (11.0 + 32.0) / 2.0, 1e-9);
  EXPECT_EQ(clf.classify(5.0), 0);
  EXPECT_EQ(clf.classify(31.0), 1);
  EXPECT_EQ(clf.classify(100.0), 2);
}

TEST(Counting, ClassifierBoundaryGoesToLowerClass) {
  VarianceClassifier clf;
  clf.train({{0, 10.0}, {1, 30.0}});
  EXPECT_EQ(clf.classify(20.0), 0);  // exactly on threshold
  EXPECT_EQ(clf.classify(20.0001), 1);
}

TEST(Counting, ClassifierRejectsUnusableTraining) {
  VarianceClassifier clf;
  EXPECT_THROW(clf.train({}), InvalidArgument);
  EXPECT_THROW(clf.train({{0, 1.0}, {0, 2.0}}), InvalidArgument);  // one class
  // Failed training must not leave partial state behind.
  EXPECT_FALSE(clf.trained());
  EXPECT_THROW(clf.classify(1.0), InvalidArgument);  // untrained
}

TEST(Counting, ClassifierPoolsInvertedAdjacentClasses) {
  // Saturation can invert adjacent class means; isotonic smoothing pools
  // them: the shared threshold sits at the pooled mean, ties classify low.
  VarianceClassifier clf;
  clf.train({{0, 50.0}, {1, 10.0}});
  ASSERT_TRUE(clf.trained());
  ASSERT_EQ(clf.thresholds().size(), 1u);
  EXPECT_DOUBLE_EQ(clf.thresholds()[0], 30.0);
  EXPECT_EQ(clf.classify(5.0), 0);
  EXPECT_EQ(clf.classify(95.0), 1);
}

TEST(Counting, ClassifierIsotonicPreservesCleanOrdering) {
  // With already-monotone means the isotonic fit is the identity.
  VarianceClassifier clf;
  clf.train({{0, 10.0}, {1, 20.0}, {2, 70.0}});
  ASSERT_EQ(clf.thresholds().size(), 2u);
  EXPECT_DOUBLE_EQ(clf.thresholds()[0], 15.0);
  EXPECT_DOUBLE_EQ(clf.thresholds()[1], 45.0);
}

TEST(Counting, ClassifierPartialInversionPoolsOnlyViolators) {
  // 2 and 3 invert; 0 and 1 stay put.
  VarianceClassifier clf;
  clf.train({{0, 0.0}, {1, 10.0}, {2, 40.0}, {3, 30.0}});
  ASSERT_EQ(clf.thresholds().size(), 3u);
  EXPECT_DOUBLE_EQ(clf.thresholds()[0], 5.0);
  EXPECT_DOUBLE_EQ(clf.thresholds()[1], 22.5);  // midpoint(10, pooled 35)
  EXPECT_DOUBLE_EQ(clf.thresholds()[2], 35.0);  // pooled boundary
  EXPECT_EQ(clf.classify(34.0), 2);
  EXPECT_EQ(clf.classify(36.0), 3);
}

TEST(Counting, ClassifierHandlesNonContiguousLabels) {
  VarianceClassifier clf;
  clf.train({{0, 10.0}, {3, 90.0}});
  EXPECT_EQ(clf.classify(5.0), 0);
  EXPECT_EQ(clf.classify(95.0), 3);
}

}  // namespace
}  // namespace wivi::core
