// Unit tests for wivi::common - types, dB conversions, RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/common/types.hpp"

namespace wivi {
namespace {

TEST(Types, Norm2MatchesStdNorm) {
  const cdouble z{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(z), 25.0);
  EXPECT_DOUBLE_EQ(norm2(z), std::norm(z));
}

TEST(Types, MeanPowerOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean_power(CVec{}), 0.0);
}

TEST(Types, MeanPowerOfUnitCircleIsOne) {
  CVec x;
  for (int k = 0; k < 16; ++k) {
    const double phi = kTwoPi * k / 16.0;
    x.emplace_back(std::cos(phi), std::sin(phi));
  }
  EXPECT_NEAR(mean_power(x), 1.0, 1e-12);
}

TEST(Db, PowerRoundTrip) {
  for (double db : {-90.0, -10.0, 0.0, 3.0, 42.0}) {
    EXPECT_NEAR(to_db(from_db(db)), db, 1e-9) << db;
  }
}

TEST(Db, AmplitudeRoundTrip) {
  for (double db : {-40.0, -6.0, 0.0, 12.0}) {
    EXPECT_NEAR(amp_to_db(db_to_amp(db)), db, 1e-9) << db;
  }
}

TEST(Db, AmplitudeIsTwiceThePowerScale) {
  // An amplitude ratio r corresponds to power ratio r^2.
  const double r = 3.7;
  EXPECT_NEAR(amp_to_db(r), to_db(r * r), 1e-9);
}

TEST(Db, ZeroPowerClampsInsteadOfInf) {
  EXPECT_TRUE(std::isfinite(to_db(0.0)));
  EXPECT_LE(to_db(0.0), -290.0);
}

TEST(Db, DbmWattsRoundTrip) {
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(dbm_to_watts(13.0), 0.0199, 3e-4);  // ~20 mW, the USRP ceiling
  EXPECT_NEAR(watts_to_dbm(dbm_to_watts(7.3)), 7.3, 1e-9);
}

TEST(Constants, WavelengthIsTwelveAndAHalfCentimeters) {
  // Paper §2.3: "signals whose wavelengths are 12.5 cm".
  EXPECT_NEAR(kWavelength, 0.125, 0.001);
}

TEST(Constants, ChannelSampleRateMatchesPaper) {
  // Paper §7.1: w = 100 samples per 0.32 s -> 312.5 Hz.
  EXPECT_NEAR(kChannelSampleRateHz, 312.5, 1e-9);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 7);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 7);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsAreStandard) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, ComplexGaussianPowerMatchesVariance) {
  Rng rng(99);
  const double var = 0.37;
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += norm2(rng.complex_gaussian(var));
  EXPECT_NEAR(acc / n, var, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork();
  // Child does not replay the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent() == child());
  EXPECT_LT(same, 2);
}

TEST(Rng, FillAwgnHasRequestedPower) {
  Rng rng(11);
  CVec buf;
  rng.fill_awgn(buf, 50000, 2.0);
  EXPECT_NEAR(mean_power(buf), 2.0, 0.05);
}

TEST(Error, RequireThrowsWithContext) {
  try {
    WIVI_REQUIRE(false, "ctx message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("ctx message"), std::string::npos);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(5.0, 2.0), InvalidArgument);
}

}  // namespace
}  // namespace wivi
