// wivi::fault — deterministic fault injection and input hardening: the
// FaultyFeeder's bit-reproducibility and exact-index fault scripting, the
// Session::push InputGuard property/fuzz pass (malformed chunks are typed,
// isolated no-ops), and the seeded multi-session chaos run (faulted
// sessions end in typed terminal states, clean sessions stay bit-identical
// to a no-fault run). The chaos seed is WIVI_CHAOS_SEED when set — the CI
// `chaos` job sweeps several seeds under ASan/UBSan and TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/api/session.hpp"
#include "src/common/random.hpp"
#include "src/fault/fault.hpp"
#include "src/rt/engine.hpp"
#include "src/sim/feeder.hpp"
#include "src/sim/synthetic.hpp"

namespace wivi {
namespace {

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("WIVI_CHAOS_SEED"))
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  return 1;
}

/// A ChunkedTrace over a cheap synthetic mover stream (no room sim).
sim::ChunkedTrace make_feed(std::size_t samples, std::uint64_t seed,
                            std::size_t chunk_len) {
  sim::TraceResult tr;
  tr.h = sim::synthetic_mover_trace(samples, seed, 0.4);
  tr.sample_rate_hz = 312.5;
  return sim::ChunkedTrace(std::move(tr), chunk_len);
}

/// Bitwise chunk-stream equality — corrupted chunks carry NaN, where
/// operator== is useless (NaN != NaN) but bit-reproducibility still holds.
void expect_streams_bitwise_equal(const std::vector<CVec>& a,
                                  const std::vector<CVec>& b,
                                  const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << label << ": chunk " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(),
                          a[i].size() * sizeof(cdouble)),
              0)
        << label << ": chunk " << i;
  }
}

bool chunk_is_finite(const CVec& c) {
  return std::all_of(c.begin(), c.end(), [](const cdouble& z) {
    return std::isfinite(z.real()) && std::isfinite(z.imag());
  });
}

// ------------------------------------------------------ feeder determinism ---

TEST(FaultyFeeder, BitReproduciblePerSeedAndAcrossRewind) {
  FaultSpec spec;
  spec.seed = chaos_seed();
  spec.drop_prob = 0.1;
  spec.duplicate_prob = 0.1;
  spec.reorder_prob = 0.1;
  spec.truncate_prob = 0.1;
  spec.corrupt_prob = 0.1;
  spec.gap_prob = 0.05;
  spec.silence_chunks = 2;

  const auto replay = [&](fault::FaultyFeeder& f) {
    std::vector<int> actions;
    std::vector<CVec> chunks;
    CVec c;
    for (;;) {
      const fault::FaultAction a = f.next(c);
      actions.push_back(static_cast<int>(a));
      if (a == fault::FaultAction::kEnd) break;
      if (a == fault::FaultAction::kDeliver) chunks.push_back(c);
    }
    return std::make_pair(std::move(actions), std::move(chunks));
  };

  fault::FaultyFeeder a(make_feed(4096, 42, 64), spec);
  fault::FaultyFeeder b(make_feed(4096, 42, 64), spec);
  const auto [actions_a, chunks_a] = replay(a);
  const auto [actions_b, chunks_b] = replay(b);
  EXPECT_EQ(actions_a, actions_b);
  expect_streams_bitwise_equal(chunks_a, chunks_b, "same seed");
  EXPECT_EQ(a.stats().delivered, b.stats().delivered);
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);

  // rewind() replays the exact same faulted stream.
  a.rewind();
  const auto [actions_r, chunks_r] = replay(a);
  EXPECT_EQ(actions_r, actions_a);
  expect_streams_bitwise_equal(chunks_r, chunks_a, "rewind");

  // A different seed produces a different plan (with these probabilities
  // a 64-chunk stream colliding by chance is ~impossible).
  FaultSpec other = spec;
  other.seed = spec.seed + 1;
  fault::FaultyFeeder d(make_feed(4096, 42, 64), other);
  const auto [actions_d, chunks_d] = replay(d);
  EXPECT_NE(actions_a, actions_d);

  // The injection counters reconcile with the source and the output.
  EXPECT_EQ(a.source_index(), 4096u / 64u);
  EXPECT_EQ(a.stats().delivered,
            a.source_index() - a.stats().dropped + a.stats().duplicated);
}

TEST(FaultyFeeder, ZeroSpecIsAPassThrough) {
  fault::FaultyFeeder f(make_feed(1024, 7, 100), FaultSpec{});
  const CVec& truth = f.trace().trace().h;
  CVec all;
  CVec c;
  fault::FaultAction a;
  while ((a = f.next(c)) == fault::FaultAction::kDeliver)
    all.insert(all.end(), c.begin(), c.end());
  EXPECT_EQ(a, fault::FaultAction::kEnd);
  EXPECT_EQ(all, truth);
  EXPECT_EQ(f.stats().delivered, 11u);  // ceil(1024 / 100)
  EXPECT_EQ(f.stats().dropped + f.stats().duplicated + f.stats().reordered +
                f.stats().truncated + f.stats().corrupted + f.stats().gaps,
            0u);
}

TEST(FaultyFeeder, ScriptedFaultsFireAtExactChunkIndices) {
  FaultSpec spec;
  spec.drop_at = {2};
  spec.corrupt_at = {4};
  spec.silence_at = {1};
  spec.silence_chunks = 3;
  spec.end_at = 8;
  fault::FaultyFeeder f(make_feed(1280, 9, 64), spec);  // 20 source chunks

  const CVec& truth = f.trace().trace().h;
  std::size_t gaps_seen = 0;
  std::vector<CVec> delivered;
  CVec c;
  for (;;) {
    const fault::FaultAction a = f.next(c);
    if (a == fault::FaultAction::kEnd) break;
    if (a == fault::FaultAction::kGap) {
      ++gaps_seen;
      // The scripted gap opens before chunk 1: exactly one delivery
      // (chunk 0) has happened when the silence starts.
      EXPECT_EQ(delivered.size(), 1u);
      continue;
    }
    delivered.push_back(c);
  }
  // end_at=8 cuts the stream to source chunks 0..7; chunk 2 is dropped.
  ASSERT_EQ(delivered.size(), 7u);
  EXPECT_EQ(gaps_seen, 3u);
  EXPECT_EQ(f.stats().dropped, 1u);
  EXPECT_EQ(f.stats().corrupted, 1u);

  // Each surviving chunk equals the ground-truth slice — except index 4,
  // which must carry the scripted NaN/Inf burst.
  const std::size_t sources[] = {0, 1, 3, 4, 5, 6, 7};
  for (std::size_t k = 0; k < delivered.size(); ++k) {
    const std::size_t i = sources[k];
    const CVec slice(truth.begin() + static_cast<std::ptrdiff_t>(i * 64),
                     truth.begin() + static_cast<std::ptrdiff_t>((i + 1) * 64));
    if (i == 4) {
      EXPECT_FALSE(chunk_is_finite(delivered[k])) << "chunk 4 not corrupted";
      EXPECT_EQ(delivered[k].size(), slice.size());
    } else {
      EXPECT_EQ(delivered[k], slice) << "source chunk " << i;
    }
  }
}

// -------------------------------------------- InputGuard property / fuzz ---

api::PipelineSpec guarded_spec() {
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  spec.count = api::CountStage{};
  return spec;
}

TEST(InputGuard, MalformedChunksAreTypedIsolatedNoOps) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  api::PipelineSpec spec = guarded_spec();
  spec.guard.max_chunk_samples = 4096;
  spec.guard.frame_samples = 8;
  api::Session session(spec);

  const CVec h = sim::synthetic_mover_trace(1024, 11, 0.4);
  session.push(CSpan(h).subspan(0, 512));
  const std::size_t samples_before = session.samples_seen();
  const std::size_t columns_before = session.columns_seen();

  const auto expect_rejected = [&](CVec bad, const char* label) {
    try {
      session.push(bad);
      FAIL() << label << ": malformed chunk was accepted";
    } catch (const TypedError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidChunk) << label;
    }
    // Isolation: the rejection mutated nothing and the session is open.
    EXPECT_FALSE(session.finished()) << label;
    EXPECT_FALSE(session.failed()) << label;
    EXPECT_EQ(session.error_code(), ErrorCode::kNone) << label;
    EXPECT_EQ(session.samples_seen(), samples_before) << label;
    EXPECT_EQ(session.columns_seen(), columns_before) << label;
  };

  expect_rejected(CVec{}, "empty");
  expect_rejected(CVec(12, cdouble(1.0, 0.0)), "frame-misaligned");
  expect_rejected(CVec(8192, cdouble(1.0, 0.0)), "oversized");
  CVec poisoned(16, cdouble(1.0, 0.0));
  poisoned[9] = cdouble(kNan, 0.0);
  expect_rejected(poisoned, "NaN");
  poisoned[9] = cdouble(0.0, std::numeric_limits<double>::infinity());
  expect_rejected(poisoned, "Inf");

  // The session continues exactly where it left off: finishing the stream
  // is bit-identical to a session that never saw the malformed chunks.
  session.push(CSpan(h).subspan(512, 512));
  session.finish();
  api::Session clean(spec);
  clean.run(h);
  ASSERT_EQ(session.columns_seen(), clean.columns_seen());
  EXPECT_EQ(session.image().columns, clean.image().columns);
  EXPECT_EQ(session.spatial_variance(), clean.spatial_variance());
}

TEST(InputGuard, SeededFuzzNeverKillsTheSessionOrPerturbsTheStream) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  api::PipelineSpec spec = guarded_spec();
  spec.guard.max_chunk_samples = 512;
  api::Session fuzzed(spec);
  api::Session clean(spec);

  const CVec h = sim::synthetic_mover_trace(2048, 13, 0.4);
  Rng rng(chaos_seed() * 977 + 3);
  std::size_t pos = 0;
  std::size_t rejected = 0;
  while (pos < h.size()) {
    if (rng() % 3 == 0) {
      // One malformed chunk of a random flavour; must be a typed no-op.
      CVec bad;
      switch (rng() % 4) {
        case 0:
          break;  // empty
        case 1:
          bad.assign(513 + rng() % 512, cdouble(0.5, 0.5));  // oversized
          break;
        case 2:
          bad.assign(1 + rng() % 64, cdouble(1.0, 0.0));
          bad[rng() % bad.size()] = cdouble(kNan, 0.0);
          break;
        default:
          bad.assign(1 + rng() % 64, cdouble(1.0, 0.0));
          bad[rng() % bad.size()] = cdouble(kInf, -kInf);
          break;
      }
      try {
        fuzzed.push(bad);
        FAIL() << "malformed chunk accepted at pos " << pos;
      } catch (const TypedError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kInvalidChunk);
        ++rejected;
      }
      ASSERT_FALSE(fuzzed.failed());
      continue;
    }
    const std::size_t len = std::min<std::size_t>(1 + rng() % 256,
                                                  h.size() - pos);
    const CSpan chunk = CSpan(h).subspan(pos, len);
    fuzzed.push(chunk);
    clean.push(chunk);
    pos += len;
  }
  EXPECT_GE(rejected, 1u) << "fuzz loop never generated a malformed chunk";
  fuzzed.finish();
  clean.finish();
  ASSERT_EQ(fuzzed.columns_seen(), clean.columns_seen());
  EXPECT_EQ(fuzzed.image().columns, clean.image().columns);
  EXPECT_EQ(fuzzed.spatial_variance(), clean.spatial_variance());
}

TEST(InputGuard, CheckFiniteOffAdmitsNonFiniteAndRecordedRunsAreGuarded) {
  // check_finite=false: the scan is skipped (pre-validated replay mode).
  api::PipelineSpec spec = guarded_spec();
  spec.guard.check_finite = false;
  api::Session session(spec);
  CVec odd(64, cdouble(1.0, 0.0));
  odd[3] = cdouble(std::numeric_limits<double>::quiet_NaN(), 0.0);
  EXPECT_NO_THROW(session.push(odd));

  // The parallel-offline entry point shares the same trust boundary.
  api::Session parallel(guarded_spec());
  CVec bad = sim::synthetic_mover_trace(1024, 5, 0.4);
  bad[700] = cdouble(0.0, std::numeric_limits<double>::infinity());
  try {
    parallel.run(bad, api::Parallelism{2});
    FAIL() << "non-finite recorded trace was accepted";
  } catch (const TypedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidChunk);
  }
  EXPECT_FALSE(parallel.failed()) << "a rejected trace must not poison";
}

// ------------------------------------------------------- multi-session chaos ---

/// The acceptance chaos run: 8 concurrent engine sessions — 4 clean, and
/// one each of chunk-drop+corruption, scripted stage throw (terminal),
/// scripted throw under a RestartPolicy (recovers), and feeder death
/// resolved by a fatal watchdog. Every faulted session must end in a
/// typed terminal state and the clean sessions must stay bit-identical
/// to a standalone no-fault pass.
TEST(Chaos, EightSessionsFaultedSessionsDieTypedCleanSessionsBitIdentical) {
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kChunk = 64;
  const std::uint64_t seed = chaos_seed();

  std::vector<CVec> traces;
  for (std::size_t s = 0; s < kSessions; ++s)
    traces.push_back(sim::synthetic_mover_trace(
        1536, 100 * seed + s, 0.3 + 0.05 * static_cast<double>(s)));

  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  spec.count = api::CountStage{};

  rt::Engine::Config ec;
  ec.num_threads = 4;
  rt::Engine engine(ec);

  std::vector<rt::SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    rt::IngestConfig ingest;
    ingest.backpressure = rt::Backpressure::kBlock;
    if (s == 5) ingest.fault_hook = fault::throw_hook({7});  // terminal
    if (s == 6) {
      ingest.fault_hook = fault::throw_hook({5});
      ingest.restart.max_restarts = 2;  // recovers
    }
    if (s == 7) {
      ingest.watchdog.stall_timeout_sec = 0.15;  // feeder dies mid-trace
      ingest.watchdog.timeout_is_fatal = true;
    }
    ids.push_back(engine.open_session(spec, std::move(ingest)));
  }

  // Session 4's feed goes through a seeded drop+corrupt fault plan; the
  // corrupted chunks must bounce off the InputGuard, not kill anything.
  FaultSpec fs;
  fs.seed = seed;
  fs.drop_prob = 0.15;
  fs.corrupt_prob = 0.15;
  sim::TraceResult tr4;
  tr4.h = traces[4];
  tr4.sample_rate_hz = 312.5;
  fault::FaultyFeeder feeder4(sim::ChunkedTrace(std::move(tr4), kChunk), fs);

  // Round-robin all eight feeders like concurrent sensors.
  std::vector<std::size_t> pos(kSessions, 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t s = 0; s < kSessions; ++s) {
      if (s == 4) {
        CVec c;
        for (;;) {
          const fault::FaultAction a = feeder4.next(c);
          if (a == fault::FaultAction::kGap) continue;  // silent period
          if (a == fault::FaultAction::kDeliver) {
            engine.offer(ids[4], std::move(c));
            any = true;
          }
          break;
        }
        continue;
      }
      if (pos[s] >= traces[s].size()) continue;
      // Session 7's feeder dies halfway through the trace.
      if (s == 7 && pos[s] >= traces[s].size() / 2) continue;
      const std::size_t len = std::min(kChunk, traces[s].size() - pos[s]);
      CVec c(traces[s].begin() + static_cast<std::ptrdiff_t>(pos[s]),
             traces[s].begin() + static_cast<std::ptrdiff_t>(pos[s] + len));
      engine.offer(ids[s], std::move(c));
      pos[s] += len;
      any = true;
    }
  }
  for (std::size_t s = 0; s < kSessions; ++s)
    if (s != 7) engine.close_session(ids[s]);  // 7 resolves via watchdog
  engine.drain();

  std::vector<rt::Event> events;
  engine.poll(events);
  const auto last_of = [&](rt::SessionId id) -> const rt::Event& {
    const rt::Event* last = nullptr;
    for (const rt::Event& e : events)
      if (e.session == id) last = &e;
    EXPECT_NE(last, nullptr);
    return *last;
  };

  // Clean sessions: bit-identical to a standalone no-fault pass.
  for (std::size_t s = 0; s < 4; ++s) {
    api::Session reference(spec);
    reference.run(traces[s]);
    const auto& img = engine.tracker(ids[s]).image();
    ASSERT_EQ(img.num_times(), reference.image().num_times()) << s;
    EXPECT_EQ(img.columns, reference.image().columns) << s;
    EXPECT_EQ(engine.pipeline(ids[s]).spatial_variance(),
              reference.spatial_variance())
        << s;
    EXPECT_EQ(last_of(ids[s]).type, rt::Event::Type::kFinished) << s;
    const auto st = engine.stats(ids[s]);
    EXPECT_EQ(st.chunks_dropped, 0u) << s;
    EXPECT_EQ(st.chunks_rejected, 0u) << s;
  }

  // Session 4 (drop + corrupt): survives, finishes, and every corrupted
  // chunk is accounted as an InputGuard rejection.
  {
    const auto st = engine.stats(ids[4]);
    EXPECT_TRUE(st.finished);
    EXPECT_EQ(last_of(ids[4]).type, rt::Event::Type::kFinished);
    EXPECT_EQ(st.chunks_rejected, feeder4.stats().corrupted);
    EXPECT_EQ(last_of(ids[4]).chunks_rejected, st.chunks_rejected);
  }

  // Session 5 (scripted throw, no restarts): terminal typed kError.
  {
    const rt::Event& last = last_of(ids[5]);
    EXPECT_EQ(last.type, rt::Event::Type::kError);
    EXPECT_EQ(last.code, ErrorCode::kStageFailure);
    EXPECT_TRUE(engine.stats(ids[5]).finished);
  }

  // Session 6 (scripted throw under RestartPolicy): kError then
  // kRecovered, then runs to a healthy kFinished.
  {
    bool saw_error = false;
    bool saw_recovered_after_error = false;
    for (const rt::Event& e : events) {
      if (e.session != ids[6]) continue;
      if (e.type == rt::Event::Type::kError) saw_error = true;
      if (e.type == rt::Event::Type::kRecovered && saw_error) {
        saw_recovered_after_error = true;
        EXPECT_EQ(e.code, ErrorCode::kStageFailure);
        EXPECT_EQ(e.restarts, 1);
      }
    }
    EXPECT_TRUE(saw_recovered_after_error);
    EXPECT_EQ(last_of(ids[6]).type, rt::Event::Type::kFinished);
    EXPECT_EQ(engine.stats(ids[6]).restarts, 1);
  }

  // Session 7 (feeder death): the fatal watchdog resolves it with a
  // typed kTimeout terminal error.
  {
    const rt::Event& last = last_of(ids[7]);
    EXPECT_EQ(last.type, rt::Event::Type::kError);
    EXPECT_EQ(last.code, ErrorCode::kTimeout);
    EXPECT_TRUE(engine.stats(ids[7]).finished);
  }
}

}  // namespace
}  // namespace wivi
