// eval_scenarios — regenerate the committed accuracy matrix.
//
// Sweeps the full sim::scenario_families() catalog (>= 100 generated
// scenarios across six families) through the pipeline with the default
// sim::Evaluator configuration and writes ACCURACY_matrix.json. The run
// is pure in the base seed: the same binary and seed always reproduce the
// committed file byte for byte, which is exactly what the scenario-eval
// CI job asserts via scripts/check_accuracy.py.
//
//   eval_scenarios [--out PATH] [--base-seed N] [--family NAME]
//
//   --out PATH      where to write the matrix (default ACCURACY_matrix.json)
//   --base-seed N   catalog base seed (default sim::kMatrixBaseSeed)
//   --family NAME   only sweep the named family (debugging; the matrix
//                   then covers just that family)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/evaluate.hpp"

int main(int argc, char** argv) {
  std::string out_path = "ACCURACY_matrix.json";
  std::uint64_t base_seed = wivi::sim::kMatrixBaseSeed;
  std::string only_family;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else if (arg == "--base-seed" && has_value) {
      base_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--family" && has_value) {
      only_family = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: eval_scenarios [--out PATH] [--base-seed N] "
                   "[--family NAME]\n");
      return 2;
    }
  }

  using wivi::sim::FamilySummary;
  using wivi::sim::ScenarioScores;

  std::vector<std::pair<FamilySummary, std::vector<ScenarioScores>>> results;
  for (const wivi::sim::ScenarioFamily& fam :
       wivi::sim::scenario_families(base_seed)) {
    if (!only_family.empty() && fam.name != only_family) continue;
    std::fprintf(stderr, "evaluating family %-12s (%zu scenarios)...\n",
                 fam.name.c_str(), fam.cases.size());
    std::vector<ScenarioScores> scores = wivi::sim::evaluate_family(fam);
    results.emplace_back(wivi::sim::summarize(fam.name, scores),
                         std::move(scores));
  }
  if (results.empty()) {
    std::fprintf(stderr, "no family matched '%s'\n", only_family.c_str());
    return 2;
  }

  std::printf("%-12s %5s %9s %11s %7s %9s %7s %10s %9s\n", "family", "n",
              "ospa_deg", "continuity", "purity", "id_switch", "ghosts",
              "count_acc", "rejected");
  for (const auto& [s, scores] : results)
    std::printf("%-12s %5d %9.3f %11.3f %7.3f %9d %7d %10.3f %9d\n",
                s.name.c_str(), s.scenarios, s.mean_ospa_deg,
                s.mean_continuity, s.mean_purity, s.total_id_switches,
                s.total_ghost_tracks, s.mean_count_accuracy,
                s.total_chunks_rejected);

  const std::string json =
      wivi::sim::accuracy_matrix_json(base_seed, results);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), json.size());
  return 0;
}
