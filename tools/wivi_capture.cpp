// wivi_capture — record, replay and inspect network-ingress captures.
//
// The operational face of the capture/replay subsystem (DESIGN.md §13):
//
//   wivi_capture record  --out FILE [--samples N] [--seed N]
//                        [--chunk N] [--sensor ID] [--transport udp|tcp]
//                        [--drop P] [--dup P] [--reorder P] [--truncate P]
//                        [--corrupt P] [--fault-seed N]
//       Drive a synthetic sensor stream through a real loopback socket
//       into a Receiver with a capture tap, writing every accepted frame
//       (and its arrival time) to FILE. The optional fault probabilities
//       put a deterministic FaultyWire between encoder and socket, so the
//       recording exercises loss/reorder/corruption exactly like the
//       chaos suites.
//
//   wivi_capture replay  --in FILE [--window N]
//       Feed FILE through the same Demux path the live receiver ran and
//       print the delivery/accounting summary. Replaying twice prints
//       byte-identical numbers — a capture is a deterministic regression
//       case.
//
//   wivi_capture inspect --in FILE [--limit N]
//       Dump the file header and per-record frame headers (arrival time,
//       sensor, seq, fragment, payload bytes, parse status) without
//       reassembling anything.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/net/capture.hpp"
#include "src/net/frame.hpp"
#include "src/net/receiver.hpp"
#include "src/net/sender.hpp"
#include "src/net/wire_fault.hpp"
#include "src/sim/feeder.hpp"
#include "src/sim/netfeed.hpp"
#include "src/sim/synthetic.hpp"

namespace {

using namespace wivi;

int usage() {
  std::fprintf(
      stderr,
      "usage: wivi_capture record  --out FILE [--samples N] [--seed N]\n"
      "                            [--chunk N] [--sensor ID]\n"
      "                            [--transport udp|tcp] [--drop P] [--dup P]\n"
      "                            [--reorder P] [--truncate P] [--corrupt P]\n"
      "                            [--fault-seed N]\n"
      "       wivi_capture replay  --in FILE [--window N]\n"
      "       wivi_capture inspect --in FILE [--limit N]\n");
  return 2;
}

/// Minimal flag cracker shared by the three subcommands.
struct Args {
  std::string out, in;
  std::size_t samples = 4000;
  std::uint64_t seed = 1;
  std::size_t chunk = 64;
  std::uint32_t sensor = 1;
  std::string transport = "udp";
  net::WireFaultSpec fault;
  bool faulty = false;
  std::uint64_t window = 8;
  std::size_t limit = 0;  // 0 = no limit

  bool parse(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      const std::string a = argv[i];
      const bool v = i + 1 < argc;
      auto fprob = [&](double* slot) {
        *slot = std::strtod(argv[++i], nullptr);
        faulty = true;
        return true;
      };
      if (a == "--out" && v) out = argv[++i];
      else if (a == "--in" && v) in = argv[++i];
      else if (a == "--samples" && v) samples = std::strtoull(argv[++i], nullptr, 10);
      else if (a == "--seed" && v) seed = std::strtoull(argv[++i], nullptr, 10);
      else if (a == "--chunk" && v) chunk = std::strtoull(argv[++i], nullptr, 10);
      else if (a == "--sensor" && v) sensor = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      else if (a == "--transport" && v) transport = argv[++i];
      else if (a == "--drop" && v) fprob(&fault.drop_prob);
      else if (a == "--dup" && v) fprob(&fault.duplicate_prob);
      else if (a == "--reorder" && v) fprob(&fault.reorder_prob);
      else if (a == "--truncate" && v) fprob(&fault.truncate_prob);
      else if (a == "--corrupt" && v) fprob(&fault.corrupt_prob);
      else if (a == "--fault-seed" && v) { fault.seed = std::strtoull(argv[++i], nullptr, 10); }
      else if (a == "--window" && v) window = std::strtoull(argv[++i], nullptr, 10);
      else if (a == "--limit" && v) limit = std::strtoull(argv[++i], nullptr, 10);
      else return false;
    }
    return true;
  }
};

void print_demux_summary(const net::Demux& demux, std::uint64_t frames,
                         std::uint64_t parse_rejects, bool truncated) {
  const auto s = demux.stats();
  std::printf("frames replayed     %" PRIu64 "\n", frames);
  std::printf("parse rejects       %" PRIu64 "\n", parse_rejects);
  std::printf("capture truncated   %s\n", truncated ? "yes" : "no");
  std::printf("sensors             %zu\n", demux.num_sensors());
  std::printf("chunks delivered    %" PRIu64 "\n", s.chunks_delivered);
  std::printf("chunks evicted      %" PRIu64 "\n", s.chunks_evicted);
  std::printf("chunk gaps          %" PRIu64 "\n", s.chunk_gaps);
  std::printf("bytes delivered     %" PRIu64 "\n", s.bytes_delivered);
  std::printf("frames: in %" PRIu64 " delivered %" PRIu64 " dup %" PRIu64
              " stale %" PRIu64 " evicted %" PRIu64 " decode_failed %" PRIu64
              " sink_dropped %" PRIu64 " control %" PRIu64
              " in_flight %" PRIu64 "\n",
              s.frames_in, s.frames_delivered, s.frames_dup, s.frames_stale,
              s.frames_evicted, s.frames_decode_failed, s.frames_sink_dropped,
              s.frames_control, s.frames_in_flight);
  const bool conserved =
      s.frames_in == s.frames_delivered + s.frames_dup + s.frames_stale +
                         s.frames_evicted + s.frames_decode_failed +
                         s.frames_sink_dropped + s.frames_control +
                         s.frames_in_flight;
  std::printf("conservation law    %s\n", conserved ? "held" : "VIOLATED");
}

int cmd_record(const Args& args) {
  if (args.out.empty()) return usage();

  net::CaptureWriter::Config wc;
  wc.synchronous = true;  // a tool run should never drop its own capture
  net::CaptureWriter writer(args.out, wc);

  std::uint64_t chunks_delivered = 0;
  net::ReceiverConfig rc;
  rc.enable_udp = args.transport == "udp";
  rc.enable_tcp = args.transport == "tcp";
  rc.capture = &writer;
  net::Receiver rx(rc, [&](std::uint32_t, std::uint64_t, CVec&&) {
    ++chunks_delivered;
    return true;
  });

  net::FaultyWire wire(args.fault);
  net::Sender::Config sc;
  sc.transport = args.transport == "udp" ? net::Transport::kUdp
                                         : net::Transport::kTcp;
  sc.port = args.transport == "udp" ? rx.udp_port() : rx.tcp_port();
  sc.max_payload = 1024;
  if (args.faulty) sc.wire = &wire;
  net::Sender sender(sc);

  sim::TraceResult tr;
  tr.h = sim::synthetic_mover_trace(args.samples, args.seed, 0.4);
  tr.sample_rate_hz = 312.5;
  sim::ChunkedTrace trace(std::move(tr), args.chunk);
  sim::NetFeeder feeder(sender, args.sensor);
  std::size_t sent = 0;
  // Interleave send and poll so bounded socket buffers never overflow.
  CVec chunk;
  while (trace.next(chunk)) {
    sender.send_chunk(args.sensor, chunk);
    ++sent;
    rx.poll_once(0);
  }
  sender.send_end(args.sensor);
  sender.close();
  int idle = 0;
  while (idle < 3) idle = rx.poll_once(20) == 0 ? idle + 1 : 0;
  rx.flush();
  writer.close();

  const auto& w = rx.wire_stats();
  std::printf("recorded %s\n", args.out.c_str());
  std::printf("chunks sent         %zu\n", sent);
  std::printf("frames sent         %" PRIu64 "\n", sender.frames_sent());
  std::printf("frames accepted     %" PRIu64 "\n", w.frames_accepted);
  std::printf("frames rejected     %" PRIu64 "\n", w.frames_rejected);
  std::printf("chunks delivered    %" PRIu64 "\n", chunks_delivered);
  std::printf("capture records     %" PRIu64 "\n", writer.records());
  std::printf("capture bytes       %" PRIu64 "\n", writer.bytes());
  if (args.faulty) {
    const auto& f = wire.stats();
    std::printf("wire faults: dropped %" PRIu64 " dup %" PRIu64
                " reordered %" PRIu64 " truncated %" PRIu64
                " corrupted %" PRIu64 "\n",
                f.dropped, f.duplicated, f.reordered, f.truncated,
                f.corrupted);
  }
  return 0;
}

int cmd_replay(const Args& args) {
  if (args.in.empty()) return usage();
  net::Reassembler::Config cfg;
  cfg.window_chunks = args.window;
  net::Replayer replayer(
      args.in, cfg,
      [](std::uint32_t, std::uint64_t, CVec&&) { return true; },
      [](std::uint32_t sensor) {
        std::printf("end-of-stream       sensor %u\n", sensor);
      });
  const std::uint64_t frames = replayer.run();
  print_demux_summary(replayer.demux(), frames, replayer.parse_rejects(),
                      replayer.reader().truncated());
  return 0;
}

int cmd_inspect(const Args& args) {
  if (args.in.empty()) return usage();
  net::CaptureReader reader(args.in);
  std::printf("%-6s %-14s %-8s %-8s %-9s %-7s %s\n", "rec", "arrival_ns",
              "sensor", "seq", "frag", "bytes", "status");
  net::CaptureRecord rec;
  std::size_t shown = 0;
  while (reader.next(rec)) {
    net::FrameView v;
    const net::ParseStatus st = net::parse_frame(rec.frame, v);
    if (args.limit != 0 && shown >= args.limit) continue;  // still count
    ++shown;
    if (st == net::ParseStatus::kOk) {
      std::printf("%-6" PRIu64 " %-14" PRId64 " %-8u %-8" PRIu64
                  " %u/%-6u %-7zu %s%s\n",
                  reader.records(), rec.arrival_ns, v.header.sensor_id,
                  v.header.chunk_seq, v.header.frag_index,
                  v.header.frag_count, rec.frame.size(),
                  net::parse_status_name(st),
                  (v.header.flags & net::kFlagEndOfStream) ? " [end]" : "");
    } else {
      std::printf("%-6" PRIu64 " %-14" PRId64 " %-8s %-8s %-9s %-7zu %s\n",
                  reader.records(), rec.arrival_ns, "-", "-", "-",
                  rec.frame.size(), net::parse_status_name(st));
    }
  }
  std::printf("records %" PRIu64 "%s\n", reader.records(),
              reader.truncated() ? " (torn tail: file truncated mid-record)"
                                 : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Args args;
  if (!args.parse(argc, argv)) return usage();
  try {
    if (cmd == "record") return cmd_record(args);
    if (cmd == "replay") return cmd_replay(args);
    if (cmd == "inspect") return cmd_inspect(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wivi_capture: %s\n", e.what());
    return 1;
  }
  return usage();
}
