// Fig. 5-3: Wi-Vi tracks the motion of two humans - two curved lines whose
// angles vary in time plus one straight DC line.
#include "bench/bench_util.hpp"
#include "src/core/tracker.hpp"
#include "src/dsp/peaks.hpp"
#include "src/sim/protocols.hpp"

using namespace wivi;

int main() {
  bench::banner("Fig. 5-3", "Tracking two humans simultaneously");

  sim::CountingTrial trial;
  trial.room = sim::stata_conference_a();
  trial.num_humans = 2;
  trial.subjects = {1, 5};
  trial.duration_sec = 4.0;
  trial.seed = bench::trial_seed(53, 0);
  trial.image_threads = 0;  // offline figure build: shard columns over all cores
  const sim::CountingResult r = sim::run_counting_trial(trial);

  bench::section("A'[theta, n] heat map (smoothed MUSIC)");
  std::printf("%s", core::render_ascii(r.image).c_str());

  bench::section("simultaneous non-DC ridges per column");
  int cols_with_two = 0;
  for (std::size_t c = 0; c < r.image.num_times(); ++c) {
    const RVec col = r.image.column_db(c);
    const auto peaks =
        dsp::find_peaks(col, {.min_height = 8.0, .min_distance = 8});
    int non_dc = 0;
    for (const auto& p : peaks)
      if (std::abs(r.image.angles_deg[p.index]) > 12.0) ++non_dc;
    if (non_dc >= 2) ++cols_with_two;
  }
  std::printf("columns showing >= 2 distinct moving ridges: %d of %zu\n",
              cols_with_two, r.image.num_times());
  std::printf("paper: two curved lines visible at once whenever both humans\n"
              "       move (intervals with one line mean one person paused\n"
              "       or is too deep inside the room), plus the DC line.\n");
  return 0;
}
