// Fig. 7-7: CDF of achieved nulling - the reduction in power received along
// static paths, across experiments in different rooms/materials. Paper:
// median 40 dB (mean ~42 dB quoted in §4.1), enough for common materials
// but not reinforced concrete.
#include "bench/bench_util.hpp"
#include "src/sim/protocols.hpp"

using namespace wivi;

int main() {
  bench::banner("Fig. 7-7", "CDF of achieved nulling (static-path reduction)");

  RVec depths;
  const rf::Material materials[] = {
      rf::Material::kHollowWall, rf::Material::kHollowWall,  // most trials
      rf::Material::kGlass, rf::Material::kSolidWoodDoor,
      rf::Material::kConcrete8in};
  int trial = 0;
  for (const rf::Material m : materials) {
    for (int t = 0; t < 8; ++t, ++trial) {
      sim::CountingTrial cfg;
      cfg.room = sim::room_with_material(m);
      // Half the trials with a person moving during/after nulling (§4.1:
      // "nulling can be performed in the presence of moving objects").
      cfg.num_humans = t % 2;
      cfg.subjects = {t % 8};
      cfg.duration_sec = 6.0;
      cfg.seed = bench::trial_seed(77, trial);
      depths.push_back(sim::run_counting_trial(cfg).effective_nulling_db);
    }
  }

  bench::print_cdf("achieved nulling [dB]", depths, 13);
  std::printf("\npaper: median 40 dB (mean ~42 dB); the CDF spans roughly\n"
              "       25-55 dB - enough to remove the flash of glass, wood,\n"
              "       hollow and moderate concrete walls, not reinforced\n"
              "       concrete (§7.6).\n");
  return 0;
}
