// Ablation: smoothed MUSIC vs conventional beamforming (Eq. 5.1) on the
// same emulated arrays (§5.2 footnote 6: MUSIC is a super-resolution
// technique with sharper peaks and lower side lobes) plus the effect of the
// smoothing sub-array: without smoothing, coherent two-person reflections
// fail to resolve.
#include <algorithm>
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/common/constants.hpp"
#include "src/common/random.hpp"
#include "src/core/music.hpp"
#include "src/dsp/peaks.hpp"

using namespace wivi;

namespace {

CVec two_movers(double vr1, double vr2, std::size_t n, const core::IsarConfig& cfg,
                Rng& rng) {
  CVec h(n);
  const double s1 = kTwoPi * 2.0 * vr1 * cfg.sample_period_sec / cfg.wavelength_m;
  const double s2 = kTwoPi * 2.0 * vr2 * cfg.sample_period_sec / cfg.wavelength_m;
  for (std::size_t i = 0; i < n; ++i) {
    const double p1 = s1 * static_cast<double>(i);
    const double p2 = 1.1 + s2 * static_cast<double>(i);
    h[i] = cdouble{std::cos(p1), std::sin(p1)} +
           0.9 * cdouble{std::cos(p2), std::sin(p2)} +
           cdouble{0.5, 0.2} + rng.complex_gaussian(1e-4);
  }
  return h;
}

double half_power_width_deg(RSpan spectrum, RSpan angles) {
  const std::size_t peak = dsp::argmax(spectrum);
  const double half = spectrum[peak] / 2.0;
  std::size_t lo = peak;
  std::size_t hi = peak;
  while (lo > 0 && spectrum[lo] > half) --lo;
  while (hi + 1 < spectrum.size() && spectrum[hi] > half) ++hi;
  return angles[hi] - angles[lo];
}

int resolved_peaks(RSpan spectrum, RSpan angles, double min_rel_db) {
  RVec db(spectrum.size());
  const double hi = *std::max_element(spectrum.begin(), spectrum.end());
  for (std::size_t i = 0; i < db.size(); ++i)
    db[i] = 10.0 * std::log10(std::max(spectrum[i] / hi, 1e-12));
  const auto peaks = dsp::find_peaks(db, {.min_height = min_rel_db,
                                          .min_distance = 6});
  int count = 0;
  for (const auto& p : peaks)
    if (std::abs(angles[p.index]) > 5.0) ++count;  // exclude the DC spike
  return count;
}

}  // namespace

int main() {
  bench::banner("Ablation", "Smoothed MUSIC vs conventional beamforming");
  Rng rng(bench::trial_seed(93, 0));
  core::MusicConfig cfg;
  const RVec angles = core::angle_grid_deg(1.0);

  bench::section("peak sharpness, single mover at +30 deg");
  {
    CVec h(100);
    const double step =
        kTwoPi * 2.0 * 0.5 * cfg.isar.sample_period_sec / cfg.isar.wavelength_m;
    for (std::size_t i = 0; i < h.size(); ++i) {
      const double p = step * static_cast<double>(i);
      h[i] = cdouble{std::cos(p), std::sin(p)} + rng.complex_gaussian(1e-4);
    }
    const core::SmoothedMusic music(cfg);
    const RVec spec = music.pseudospectrum(h, angles);
    const RVec beam = core::beamform_power(h, cfg.isar, angles);
    std::printf("half-power beam width:  MUSIC %.0f deg   beamforming %.0f deg\n",
                half_power_width_deg(spec, angles),
                half_power_width_deg(beam, angles));
  }

  bench::section("two coherent movers (+53 / -27 deg): who resolves them?");
  std::printf("%22s | %12s | %12s\n", "estimator", "peaks found", "resolves?");
  {
    Rng r2 = rng.fork();
    const CVec h = two_movers(0.8, -0.45, 100, cfg.isar, r2);
    const core::SmoothedMusic smoothed(cfg);
    const RVec s_spec = smoothed.pseudospectrum(h, angles);

    core::MusicConfig unsmoothed_cfg = cfg;
    unsmoothed_cfg.subarray = 100;  // sub-array == window: no smoothing
    const core::SmoothedMusic unsmoothed(unsmoothed_cfg);
    const RVec u_spec = unsmoothed.pseudospectrum(h, angles);

    const RVec beam = core::beamform_power(h, cfg.isar, angles);

    const int n_s = resolved_peaks(s_spec, angles, -12.0);
    const int n_u = resolved_peaks(u_spec, angles, -12.0);
    const int n_b = resolved_peaks(beam, angles, -12.0);
    std::printf("%22s | %12d | %12s\n", "smoothed MUSIC", n_s,
                n_s >= 2 ? "yes" : "NO");
    std::printf("%22s | %12d | %12s\n", "MUSIC (no smoothing)", n_u,
                n_u >= 2 ? "yes" : "NO");
    std::printf("%22s | %12d | %12s\n", "beamforming (Eq. 5.1)", n_b,
                n_b >= 2 ? "yes" : "NO");
  }
  std::printf("\npaper: smoothing de-correlates reflections bouncing off\n"
              "       different humans (§5.2); MUSIC gives sharper peaks\n"
              "       without significant side lobes (footnote 6).\n");
  return 0;
}
