// Ablation: what each stage of Algorithm 1 buys (§4.1, Lemma 4.1.1).
//
//  (1) Flash effect: without nulling, the ADC saturates at boosted gain.
//  (2) Initial nulling alone vs + iterative nulling: the power boost shifts
//      the TX chains' operating point, so stage-1 nulling degrades until
//      the iterative stage re-converges.
//  (3) Convergence rate: residual trajectory vs the Lemma 4.1.1 geometric
//      decay prediction.
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/core/nulling.hpp"
#include "src/sim/link.hpp"

using namespace wivi;

int main() {
  bench::banner("Ablation", "Nulling stages (Alg. 1) and Lemma 4.1.1");

  bench::section("(1) the flash effect at the ADC");
  std::printf("%6s | %22s | %20s\n", "trial", "saturated w/o nulling",
              "saturated with nulling");
  int sat_without = 0;
  int sat_with = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Rng rng(bench::trial_seed(90, t));
    sim::Scene scene(sim::stata_conference_a(), sim::default_calibration(), rng);
    sim::SimulatedMimoLink link(scene, rng.fork());
    const core::Nuller nuller;
    const auto r = nuller.run(link);
    sat_without += r.saturates_without_nulling;
    sat_with += r.saturates_with_nulling;
    std::printf("%6d | %22s | %20s\n", t,
                r.saturates_without_nulling ? "YES" : "no",
                r.saturates_with_nulling ? "YES" : "no");
  }
  std::printf("-> %d/%d saturate without nulling, %d/%d with nulling\n",
              sat_without, trials, sat_with, trials);

  bench::section("(2) initial vs iterative nulling depth");
  std::printf("%6s | %14s | %14s | %10s\n", "trial", "initial [dB]",
              "final [dB]", "iterations");
  RVec initial_depths;
  RVec final_depths;
  for (int t = 0; t < trials; ++t) {
    Rng rng(bench::trial_seed(91, t));
    sim::Scene scene(sim::stata_conference_a(), sim::default_calibration(), rng);
    sim::SimulatedMimoLink link(scene, rng.fork());
    const core::Nuller nuller;
    const auto r = nuller.run(link);
    const double initial = r.pre_null_power_db - r.initial_residual_power_db;
    initial_depths.push_back(initial);
    final_depths.push_back(r.nulling_db);
    std::printf("%6d | %14.1f | %14.1f | %10d\n", t, initial, r.nulling_db,
                r.iterations_used);
  }
  std::printf("-> mean initial %.1f dB, mean after iterative %.1f dB\n",
              dsp::mean(initial_depths), dsp::mean(final_depths));

  bench::section("(3) convergence vs Lemma 4.1.1");
  {
    Rng rng(bench::trial_seed(92, 0));
    sim::Scene scene(sim::stata_conference_a(), sim::default_calibration(), rng);
    sim::SimulatedMimoLink link(scene, rng.fork());
    core::Nuller::Config cfg;
    cfg.min_improvement_db = 0.0;  // run every iteration
    cfg.max_iterations = 6;
    const core::Nuller nuller(cfg);
    const auto r = nuller.run(link);
    // Fit the observed per-iteration ratio from the first two points and
    // compare the rest against the geometric prediction.
    const auto& traj = r.residual_trajectory_db;
    const double ratio_db = traj.size() >= 2 ? traj[1] - traj[0] : 0.0;
    const double ratio = std::pow(10.0, ratio_db / 20.0);
    std::printf("%5s | %14s | %22s\n", "iter", "measured [dB]",
                "Lemma 4.1.1 predict [dB]");
    for (std::size_t i = 0; i < traj.size(); ++i) {
      const double predicted =
          20.0 * std::log10(core::lemma_4_1_1_residual(
              std::pow(10.0, traj[0] / 20.0), std::abs(ratio), static_cast<int>(i)));
      std::printf("%5zu | %14.1f | %22.1f\n", i, traj[i], predicted);
    }
    std::printf("(geometric decay until the drift/quantization floor)\n");
  }
  return 0;
}
