// Fig. 7-5: CDF of the gesture SNRs (after matched filtering) pooled over
// the distance sweep, split by bit value. Paper: the '0' gesture has a
// higher SNR than the '1' gesture, because the subject is on average closer
// to the device during a '0' (forward step first) and because backward
// steps are naturally smaller.
#include "bench/gesture_sweep.hpp"

using namespace wivi;

int main() {
  bench::banner("Fig. 7-5", "CDF of gesture SNRs by bit value");
  std::printf("(reuses the Fig. 7-4 sweep - takes ~a minute)\n\n");

  const auto sweep = bench::run_gesture_sweep();

  RVec snr_zero;
  RVec snr_one;
  for (const auto& s : sweep) {
    for (double v : s.result.snr_zero_db) snr_zero.push_back(v);
    for (double v : s.result.snr_one_db) snr_one.push_back(v);
  }

  bench::section("bit '0' (step forward, step backward)");
  bench::print_cdf("gesture SNR [dB]", snr_zero, 9);
  bench::section("bit '1' (step backward, step forward)");
  bench::print_cdf("gesture SNR [dB]", snr_one, 9);

  bench::section("summary");
  std::printf("median SNR: bit '0' %.1f dB vs bit '1' %.1f dB (delta %+.1f)\n",
              dsp::median(snr_zero), dsp::median(snr_one),
              dsp::median(snr_zero) - dsp::median(snr_one));
  std::printf("paper: the bit-'0' CDF sits to the right of (above) the\n"
              "       bit-'1' CDF over the 0-30 dB range.\n");
  return 0;
}
