// Streaming-runtime microbenchmarks (google-benchmark): SPSC ring cost,
// per-column streaming cost, and the headline engine scaling curve —
// session throughput from 1 worker thread up to the machine's core count.
// Sessions outnumber workers, so on a multi-core box the curve should be
// near-linear until threads reach the core count (the CI acceptance bar:
// >= 3x at 4 threads vs 1). `BENCH_rt.json` is the committed snapshot.
//
//   ./bench_rt --benchmark_format=json
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/core/isar.hpp"
#include "src/rt/engine.hpp"
#include "src/rt/spsc_ring.hpp"
#include "src/rt/streaming.hpp"
#include "src/sim/synthetic.hpp"

using namespace wivi;

namespace {

constexpr std::size_t kSessions = 8;
constexpr std::size_t kTraceLen = 1000;  // 3.2 s per session at 312.5 Hz
constexpr std::size_t kChunk = 125;      // 0.4 s of stream per chunk

const std::vector<CVec>& session_traces() {
  static const std::vector<CVec> traces = [] {
    std::vector<CVec> t;
    for (std::size_t s = 0; s < kSessions; ++s)
      t.push_back(sim::synthetic_mover_trace(kTraceLen, 7000 + s,
                             0.3 + 0.1 * static_cast<double>(s)));
    return t;
  }();
  return traces;
}

void BM_SpscRingPushPop(benchmark::State& state) {
  rt::SpscRing<std::size_t> ring(1024);
  std::size_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(std::size_t{42}));
    benchmark::DoNotOptimize(ring.try_pop(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRingPushPop);

void BM_StreamingTrackerColumn(benchmark::State& state) {
  const CVec h = sim::synthetic_mover_trace(1 << 18, 5, 0.5);
  rt::StreamingTracker tracker;
  const auto hop = static_cast<std::size_t>(tracker.config().hop);
  // Warm up past the first window so steady state is one column per hop.
  std::size_t pos = static_cast<std::size_t>(tracker.config().music.isar.window);
  tracker.push(CSpan(h).subspan(0, pos));
  for (auto _ : state) {
    if (pos + hop > h.size()) {  // wrap: restart the stream
      state.PauseTiming();
      tracker.reset();
      pos = static_cast<std::size_t>(tracker.config().music.isar.window);
      tracker.push(CSpan(h).subspan(0, pos));
      state.ResumeTiming();
    }
    tracker.push(CSpan(h).subspan(pos, hop));
    pos += hop;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamingTrackerColumn)->Unit(benchmark::kMillisecond);

/// The headline: total wall time to stream kSessions sessions to
/// completion with a given worker count. Rings are deep enough that
/// feeding never blocks, so this isolates the pool's processing scaling.
void BM_EngineSessionThroughput(benchmark::State& state) {
  const auto& traces = session_traces();
  const auto w = static_cast<std::size_t>(core::IsarConfig{}.window);
  const std::size_t cols_per_session =
      (kTraceLen - w) /
          static_cast<std::size_t>(core::MotionTracker::Config{}.hop) +
      1;
  for (auto _ : state) {
    rt::Engine::Config ec;
    ec.num_threads = static_cast<int>(state.range(0));
    rt::Engine engine(ec);
    std::vector<rt::SessionId> ids;
    for (std::size_t s = 0; s < kSessions; ++s) {
      rt::SessionConfig sc;
      sc.emit_columns = false;
      sc.count_movers = true;
      sc.ring_capacity = kTraceLen / kChunk + 1;
      sc.backpressure = rt::Backpressure::kBlock;
      ids.push_back(engine.open_session(sc));
    }
    for (std::size_t pos = 0; pos < kTraceLen; pos += kChunk)
      for (std::size_t s = 0; s < kSessions; ++s)
        engine.offer(
            ids[s],
            CVec(traces[s].begin() + static_cast<std::ptrdiff_t>(pos),
                 traces[s].begin() + static_cast<std::ptrdiff_t>(
                                         std::min(pos + kChunk, kTraceLen))));
    for (rt::SessionId id : ids) engine.close_session(id);
    engine.drain();
  }
  const auto total_cols =
      static_cast<std::int64_t>(kSessions * cols_per_session) *
      static_cast<std::int64_t>(state.iterations());
  state.SetItemsProcessed(total_cols);
  state.counters["columns_per_sec"] = benchmark::Counter(
      static_cast<double>(total_cols), benchmark::Counter::kIsRate);
  state.counters["sessions"] = static_cast<double>(kSessions);
}
BENCHMARK(BM_EngineSessionThroughput)
    ->Apply([](benchmark::internal::Benchmark* b) {
      b->Arg(1)->Arg(2)->Arg(4);
      const auto hw = std::max(1u, std::thread::hardware_concurrency());
      if (hw > 4u) b->Arg(static_cast<int>(hw));
    })
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
