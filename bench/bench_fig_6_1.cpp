// Fig. 6-1: gestures as detected by Wi-Vi. The subject performs the step
// sequence Forward, Backward, Backward, Forward (= bits '0' then '1');
// forward steps show as triangles above the zero line, backward steps as
// inverted triangles below it.
#include "bench/bench_util.hpp"
#include "src/core/tracker.hpp"
#include "src/sim/protocols.hpp"

using namespace wivi;

int main() {
  bench::banner("Fig. 6-1", "Gesture signatures: F B B F = bits '0','1'");

  sim::GestureTrial trial;
  trial.room = sim::stata_conference_a();
  trial.distance_m = 3.0;
  trial.subject_index = 1;
  trial.message = {core::Bit::kZero, core::Bit::kOne};
  trial.seed = bench::trial_seed(61, 0);
  const sim::GestureResult r = sim::run_gesture_trial(trial);

  bench::section("signed angle signal (projection of A'[theta,n], Fig. 6-1)");
  const RVec& sig = r.decoded.angle_signal;
  // Normalise for a fixed-width bar plot.
  double peak = 1e-9;
  for (double v : sig) peak = std::max(peak, std::abs(v));
  for (std::size_t i = 0; i < sig.size(); i += 2) {
    const int bar = static_cast<int>(std::round(sig[i] / peak * 24.0));
    std::string line(49, ' ');
    line[24] = '|';
    if (bar > 0) for (int b = 1; b <= bar; ++b) line[24 + static_cast<std::size_t>(b)] = '#';
    if (bar < 0) for (int b = -1; b >= bar; --b) line[24 + static_cast<std::size_t>(b)] = '#';
    std::printf("%6.2fs %s\n", static_cast<double>(i) * 0.08, line.c_str());
  }

  bench::section("summary");
  std::printf("symbols detected (sign sequence): ");
  for (const auto& s : r.decoded.symbols) std::printf("%c", s.sign > 0 ? '+' : '-');
  std::printf("\npaper: + - - +  (triangle above / below / below / above zero)\n");
  std::printf("decoded bits: ");
  for (const auto& b : r.decoded.bits)
    std::printf("%d", static_cast<int>(b.value));
  std::printf("   (paper: 01)\n");
  return 0;
}
