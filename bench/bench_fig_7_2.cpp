// Fig. 7-2: tracking human motion with Wi-Vi - a 3x3 grid of output traces
// (columns: one / two / three humans; rows: independent trials), all after
// smoothed-MUSIC processing.
#include "bench/bench_util.hpp"
#include "src/core/tracker.hpp"
#include "src/sim/protocols.hpp"

using namespace wivi;

int main() {
  bench::banner("Fig. 7-2", "Output traces for 1 / 2 / 3 moving humans");

  for (int humans = 1; humans <= 3; ++humans) {
    for (int row = 0; row < 3; ++row) {
      sim::CountingTrial trial;
      trial.room = sim::stata_conference_a();
      trial.num_humans = humans;
      trial.subjects = {row, (row + 3) % 8, (row + 6) % 8};
      trial.duration_sec = 7.0;
      trial.seed = bench::trial_seed(72, humans * 10 + row);
      trial.image_threads = 0;  // offline figure build: shard columns over all cores
      const sim::CountingResult r = sim::run_counting_trial(trial);
      std::printf("\n(%c%d) %d human%s, trial %d   [spatial variance %.2fM]\n",
                  static_cast<char>('a' + humans - 1), row + 1, humans,
                  humans > 1 ? "s" : "", row + 1, r.spatial_variance / 1e6);
      std::printf("%s", core::render_ascii(r.image, 64, 21).c_str());
    }
  }
  std::printf("\npaper: one fuzzy curved line per moving human plus the DC\n"
              "       line; images get fuzzier as the count grows.\n");
  return 0;
}
