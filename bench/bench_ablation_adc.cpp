// Ablation: ADC resolution and headroom vs achievable nulling (§8's
// "better hardware" direction). Sweeps converter bits and the static-signal
// headroom fraction, reporting the nulling depth after Algorithm 1. With
// few bits, quantization of the channel estimates bounds the null; past
// ~12 bits the TX-chain drift floor dominates (Fig. 7-7's regime).
#include "bench/bench_util.hpp"
#include "src/core/nulling.hpp"
#include "src/sim/link.hpp"

using namespace wivi;

namespace {

double mean_nulling_for(int adc_bits, double headroom, int trials) {
  RVec depths;
  for (int t = 0; t < trials; ++t) {
    Rng rng(bench::trial_seed(96, adc_bits * 100 + static_cast<int>(headroom * 10) + t));
    sim::Calibration cal = sim::default_calibration();
    cal.adc_bits = adc_bits;
    cal.static_headroom_fraction = headroom;
    sim::Scene scene(sim::stata_conference_a(), cal, rng);
    sim::SimulatedMimoLink link(scene, rng.fork());
    const core::Nuller nuller;
    depths.push_back(nuller.run(link).nulling_db);
  }
  return dsp::mean(depths);
}

}  // namespace

int main() {
  bench::banner("Ablation", "ADC resolution / headroom vs nulling depth");
  const int trials = 5;

  bench::section("converter bits (headroom fixed at 0.4 FS)");
  std::printf("%6s | %26s\n", "bits", "mean nulling depth [dB]");
  for (const int bits : {6, 8, 10, 12, 14}) {
    std::printf("%6d | %26.1f\n", bits, mean_nulling_for(bits, 0.4, trials));
  }

  bench::section("static-signal headroom (12-bit converter)");
  std::printf("%10s | %26s\n", "fraction", "mean nulling depth [dB]");
  for (const double headroom : {0.1, 0.2, 0.4, 0.7}) {
    std::printf("%10.1f | %26.1f\n", headroom,
                mean_nulling_for(12, headroom, trials));
  }

  std::printf("\nreading: quantization limits the null at low bit depths;\n"
              "from ~12 bits the chain-drift floor (Fig. 7-7, ~40 dB over a\n"
              "capture) dominates and more resolution stops helping -\n"
              "matching §8's note that finer nulling needs better RF\n"
              "hardware, not a better converter.\n");
  return 0;
}
