// Processing-cost microbenchmarks (google-benchmark).
//
// Reference point from the paper (§7.1): Matlab post-processing of a
// 25-second trace took 1.0564 s on a 2012 i7; `FullTraceProcessing/25s`
// below is the direct analogue in this implementation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/random.hpp"
#include "src/core/nulling.hpp"
#include "src/core/tracker.hpp"
#include "src/dsp/fft.hpp"
#include "src/linalg/eig.hpp"
#include "src/par/image_builder.hpp"
#include "src/sim/link.hpp"
#include "src/sim/synthetic.hpp"

using namespace wivi;

namespace {

CVec make_trace(std::size_t n) { return sim::synthetic_mover_trace(n); }

void BM_Fft64(benchmark::State& state) {
  Rng rng(1);
  CVec x(64);
  for (auto& v : x) v = rng.complex_gaussian();
  for (auto _ : state) {
    dsp::fft(x);
    dsp::ifft(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_Fft64);

void BM_HermitianEig(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  linalg::CMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.gaussian();
    for (std::size_t j = i + 1; j < n; ++j) {
      const cdouble v = rng.complex_gaussian();
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
  }
  for (auto _ : state) {
    const auto r = linalg::hermitian_eig(a);
    benchmark::DoNotOptimize(r.values.data());
  }
}
BENCHMARK(BM_HermitianEig)->Arg(16)->Arg(32)->Arg(64);

void BM_Pseudospectrum(benchmark::State& state) {
  const CVec h = make_trace(100);
  const core::SmoothedMusic music;
  const RVec angles = core::angle_grid_deg(1.0);
  for (auto _ : state) {
    const RVec spec = music.pseudospectrum(h, angles);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_Pseudospectrum);

void BM_FullTraceProcessing(benchmark::State& state) {
  // The §7.1 reference: smoothed MUSIC over a whole captured trace.
  const double seconds = static_cast<double>(state.range(0));
  const CVec h = make_trace(static_cast<std::size_t>(seconds * 312.5));
  const core::MotionTracker tracker;
  for (auto _ : state) {
    const core::AngleTimeImage img = tracker.process(h);
    benchmark::DoNotOptimize(img.columns.data());
  }
  state.SetLabel("paper: 1.0564 s per 25 s trace in Matlab (2012 i7)");
}
BENCHMARK(BM_FullTraceProcessing)->Arg(25)->Unit(benchmark::kMillisecond);

void BM_ParallelImageBuild(benchmark::State& state) {
  // The same 25 s trace through the column-sharded builder, thread count
  // as the argument. One persistent builder: pool and per-worker
  // workspaces are reused across iterations like a batch service would.
  // The --threads flag appends an extra point to this sweep; on a 1-core
  // container the whole curve is flat by construction.
  const CVec h = make_trace(static_cast<std::size_t>(25 * 312.5));
  const par::ParallelImageBuilder builder(core::MotionTracker::Config{},
                                          static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const core::AngleTimeImage img = builder.build(h);
    benchmark::DoNotOptimize(img.columns.data());
  }
  state.SetLabel("BM_FullTraceProcessing/25s sharded over a par::ThreadPool");
}
BENCHMARK(BM_ParallelImageBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_NullingProcedure(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    sim::Scene scene(sim::stata_conference_a(), sim::default_calibration(), rng);
    sim::SimulatedMimoLink link(scene, rng.fork());
    const core::Nuller nuller;
    state.ResumeTiming();
    const auto r = nuller.run(link);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_NullingProcedure)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): strips a `--threads N` (or
// `--threads=N`) flag before google-benchmark sees argv and registers one
// extra BM_ParallelImageBuild point at exactly N threads. CI runs
//   bench_perf --threads 4 --benchmark_format=json
// to produce BENCH_parallel.json.
int main(int argc, char** argv) {
  int threads = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0 (0 = hardware)\n");
    return 1;
  }
  // The static sweep already covers 1/2/4/8 — only register an extra
  // point for other counts, so `--threads 4` doesn't run the ~25 s-trace
  // build twice and duplicate rows in the recorded JSON.
  if (threads > 0 && threads != 1 && threads != 2 && threads != 4 &&
      threads != 8) {
    benchmark::RegisterBenchmark("BM_ParallelImageBuild/threads",
                                 [](benchmark::State& st) {
                                   BM_ParallelImageBuild(st);
                                 })
        ->Arg(threads)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
