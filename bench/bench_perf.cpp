// Processing-cost microbenchmarks (google-benchmark).
//
// Reference point from the paper (§7.1): Matlab post-processing of a
// 25-second trace took 1.0564 s on a 2012 i7; `FullTraceProcessing/25s`
// below is the direct analogue in this implementation.
#include <benchmark/benchmark.h>

#include "src/common/random.hpp"
#include "src/core/nulling.hpp"
#include "src/core/tracker.hpp"
#include "src/dsp/fft.hpp"
#include "src/linalg/eig.hpp"
#include "src/sim/link.hpp"
#include "src/sim/synthetic.hpp"

using namespace wivi;

namespace {

CVec make_trace(std::size_t n) { return sim::synthetic_mover_trace(n); }

void BM_Fft64(benchmark::State& state) {
  Rng rng(1);
  CVec x(64);
  for (auto& v : x) v = rng.complex_gaussian();
  for (auto _ : state) {
    dsp::fft(x);
    dsp::ifft(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_Fft64);

void BM_HermitianEig(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  linalg::CMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.gaussian();
    for (std::size_t j = i + 1; j < n; ++j) {
      const cdouble v = rng.complex_gaussian();
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
  }
  for (auto _ : state) {
    const auto r = linalg::hermitian_eig(a);
    benchmark::DoNotOptimize(r.values.data());
  }
}
BENCHMARK(BM_HermitianEig)->Arg(16)->Arg(32)->Arg(64);

void BM_Pseudospectrum(benchmark::State& state) {
  const CVec h = make_trace(100);
  const core::SmoothedMusic music;
  const RVec angles = core::angle_grid_deg(1.0);
  for (auto _ : state) {
    const RVec spec = music.pseudospectrum(h, angles);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_Pseudospectrum);

void BM_FullTraceProcessing(benchmark::State& state) {
  // The §7.1 reference: smoothed MUSIC over a whole captured trace.
  const double seconds = static_cast<double>(state.range(0));
  const CVec h = make_trace(static_cast<std::size_t>(seconds * 312.5));
  const core::MotionTracker tracker;
  for (auto _ : state) {
    const core::AngleTimeImage img = tracker.process(h);
    benchmark::DoNotOptimize(img.columns.data());
  }
  state.SetLabel("paper: 1.0564 s per 25 s trace in Matlab (2012 i7)");
}
BENCHMARK(BM_FullTraceProcessing)->Arg(25)->Unit(benchmark::kMillisecond);

void BM_NullingProcedure(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    sim::Scene scene(sim::stata_conference_a(), sim::default_calibration(), rng);
    sim::SimulatedMimoLink link(scene, rng.fork());
    const core::Nuller nuller;
    state.ResumeTiming();
    const auto r = nuller.run(link);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_NullingProcedure)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
