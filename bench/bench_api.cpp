// Facade-overhead microbenchmarks: wivi::Session is a thin compilation of
// the rt streaming stages, and its per-chunk cost must stay within 1% of
// driving rt::StreamingTracker directly (the pin the DESIGN.md §8
// deprecation story rests on — downstream code loses nothing by moving to
// the facade).
//
// BM_DirectStreamingPush and BM_SessionPush run the identical workload —
// the same synthetic trace, the same chunking, a fresh stage per
// iteration — so their ratio is the facade overhead. The event machinery
// is also measured separately (BM_SessionPushColumns/BM_SessionPushPoll)
// because emitting ColumnEvents pays for one column copy by design.
#include <benchmark/benchmark.h>

#include "src/api/session.hpp"
#include "src/rt/streaming.hpp"
#include "src/sim/synthetic.hpp"

namespace wivi {
namespace {

constexpr std::size_t kTraceLen = 2000;  // ~77 columns at hop 25
constexpr std::size_t kChunk = 100;      // 4 columns per chunk

const CVec& trace() {
  static const CVec h = sim::synthetic_mover_trace(kTraceLen);
  return h;
}

template <typename PushFn>
void push_chunked(PushFn&& push) {
  const CVec& h = trace();
  for (std::size_t pos = 0; pos < h.size(); pos += kChunk)
    push(CSpan(h).subspan(pos, std::min(kChunk, h.size() - pos)));
}

/// Baseline: the raw streaming image stage, no facade.
void BM_DirectStreamingPush(benchmark::State& state) {
  for (auto _ : state) {
    rt::StreamingTracker tracker;
    push_chunked([&](CSpan c) { benchmark::DoNotOptimize(tracker.push(c)); });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTraceLen / kChunk));
}
BENCHMARK(BM_DirectStreamingPush)->Unit(benchmark::kMillisecond);

/// The facade running the identical workload: image stage only, column
/// events off — the apples-to-apples overhead number (pinned <= 1%).
void BM_SessionPush(benchmark::State& state) {
  for (auto _ : state) {
    api::PipelineSpec spec;
    spec.image.emit_columns = false;
    api::Session session(std::move(spec));
    push_chunked([&](CSpan c) { benchmark::DoNotOptimize(session.push(c)); });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTraceLen / kChunk));
}
BENCHMARK(BM_SessionPush)->Unit(benchmark::kMillisecond);

/// The facade with ColumnEvents on and polled — adds one column copy per
/// column plus the queue traffic (the price of consuming typed events).
void BM_SessionPushPoll(benchmark::State& state) {
  std::vector<api::Event> events;
  for (auto _ : state) {
    api::PipelineSpec spec;  // emit_columns defaults on
    api::Session session(std::move(spec));
    push_chunked([&](CSpan c) {
      session.push(c);
      events.clear();
      benchmark::DoNotOptimize(session.poll(events));
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTraceLen / kChunk));
}
BENCHMARK(BM_SessionPushPoll)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wivi

BENCHMARK_MAIN();
