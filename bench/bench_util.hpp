// Shared helpers for the table/figure regeneration harness.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation chapter (DESIGN.md §3) and prints the same rows/series the
// paper reports, plus the paper's numbers for side-by-side comparison.
#pragma once

#include <cstdio>
#include <string>

#include "src/dsp/stats.hpp"

namespace wivi::bench {

inline void banner(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s - %s\n", id, title);
  std::printf("==============================================================\n");
}

inline void section(const char* name) { std::printf("\n--- %s ---\n", name); }

/// Print an empirical CDF as (value, fraction) rows, the way the paper's
/// CDF figures read.
inline void print_cdf(const char* label, RSpan samples, std::size_t rows = 11) {
  const dsp::Ecdf cdf(samples);
  std::printf("%s  (n=%zu, median=%.2f, mean=%.2f)\n", label, samples.size(),
              dsp::median(samples), dsp::mean(samples));
  std::printf("  %12s  %8s\n", "value", "CDF");
  for (const auto& row : cdf.tabulate(rows))
    std::printf("  %12.2f  %8.3f\n", row.value, row.fraction);
}

/// The fixed trial seeds used across benches: bench results must be
/// reproducible run-to-run, like a lab notebook.
inline std::uint64_t trial_seed(int experiment, int trial) {
  return 0xB1B0'0000ULL + static_cast<std::uint64_t>(experiment) * 1000 +
         static_cast<std::uint64_t>(trial);
}

}  // namespace wivi::bench
