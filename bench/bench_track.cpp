// Microbenchmarks for the multi-target tracking subsystem: per-column
// detection cost, association cost (greedy vs Hungarian as the target
// count grows), and the full per-column tracker step on the canonical
// three-mover crossing scenario. The association stage is the one that
// scales with target count, so BM_Assign* is the number to watch when
// raising ColumnDetector::Config::max_detections.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "src/core/tracker.hpp"
#include "src/sim/synthetic.hpp"
#include "src/track/assignment.hpp"
#include "src/track/detect.hpp"
#include "src/track/multi_tracker.hpp"

namespace {

using namespace wivi;

/// Cached MUSIC image of the three-mover crossing trace (expensive; built
/// once and shared by the benchmarks that consume columns).
const core::AngleTimeImage& crossing_image() {
  static const core::AngleTimeImage img = [] {
    const CVec h = sim::synthetic_crossing_trace(8.0, 1234);
    return core::MotionTracker().process(h);
  }();
  return img;
}

void BM_ColumnDetect(benchmark::State& state) {
  const core::AngleTimeImage& img = crossing_image();
  const track::ColumnDetector detector;
  std::vector<track::Detection> dets;
  std::size_t t = 0;
  for (auto _ : state) {
    detector.detect_into(img, t, dets);
    benchmark::DoNotOptimize(dets.data());
    t = (t + 1) % img.num_times();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ColumnDetect);

/// A K-track / K-detection association frame with overlapping gates (the
/// ambiguous, Hungarian-triggering shape): tracks at 10*i degrees,
/// detections offset so neighbouring gates contend.
track::CostMatrix contended_frame(std::size_t k) {
  track::CostMatrix cost(k, k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) {
      const double d = 10.0 * (i > j ? i - j : j - i) + 4.0;
      if (d <= 15.0) cost.at(i, j) = d;
    }
  return cost;
}

void BM_AssignGreedy(benchmark::State& state) {
  const auto cost = contended_frame(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto match = track::greedy_assign(cost);
    benchmark::DoNotOptimize(match.data());
  }
}
BENCHMARK(BM_AssignGreedy)->Arg(2)->Arg(4)->Arg(8);

void BM_AssignHungarian(benchmark::State& state) {
  const auto cost = contended_frame(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto match = track::hungarian_assign(cost);
    benchmark::DoNotOptimize(match.data());
  }
}
BENCHMARK(BM_AssignHungarian)->Arg(2)->Arg(4)->Arg(8);

/// Full per-column association cost: one tracker stepped over the cached
/// crossing image, fresh tracker per pass so lifecycle work is included.
/// items/s == columns/s.
void BM_TrackerStepPerColumn(benchmark::State& state) {
  const core::AngleTimeImage& img = crossing_image();
  for (auto _ : state) {
    track::MultiTargetTracker tracker;
    for (std::size_t t = 0; t < img.num_times(); ++t)
      benchmark::DoNotOptimize(&tracker.step(img, t));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * crossing_image().num_times()));
}
BENCHMARK(BM_TrackerStepPerColumn);

}  // namespace

BENCHMARK_MAIN();
