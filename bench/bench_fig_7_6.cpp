// Fig. 7-6: gesture detection in different building structures. One subject
// stands 3 m behind the obstruction and performs the '0' gesture; 8 trials
// per material. (a) detection accuracy; (b) mean SNR with min/max bars.
// Paper: 100% for free space / tinted glass / 1.75" wood / 6" hollow wall,
// 87.5% for 8" concrete; SNR drops as the material gets denser.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "src/sim/protocols.hpp"

using namespace wivi;

int main() {
  bench::banner("Fig. 7-6", "Gesture detection through different materials");

  struct Row {
    rf::Material material;
    const char* paper_accuracy;
  };
  const Row rows[] = {
      {rf::Material::kFreeSpace, "100%"},
      {rf::Material::kGlass, "100%"},
      {rf::Material::kSolidWoodDoor, "100%"},
      {rf::Material::kHollowWall, "100%"},
      {rf::Material::kConcrete8in, "87.5%"},
  };

  std::printf("%-26s %9s %9s | %8s %8s %8s | %s\n", "material", "detect",
              "flips", "SNRavg", "SNRmin", "SNRmax", "paper");
  for (const Row& row : rows) {
    int detected = 0;
    int flips = 0;
    RVec snrs;
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
      sim::GestureTrial trial;
      trial.room = sim::room_with_material(row.material);
      trial.distance_m = 3.0;
      trial.subject_index = t % 4;
      trial.message = {core::Bit::kZero};  // the paper's '0' bit gesture
      trial.seed = bench::trial_seed(76, static_cast<int>(row.material) * 100 + t);
      const sim::GestureResult r = sim::run_gesture_trial(trial);
      detected += r.correct;
      flips += r.flipped;
      for (double v : r.snr_zero_db) snrs.push_back(v);
    }
    const double acc = 100.0 * detected / trials;
    if (snrs.empty()) snrs.push_back(0.0);
    std::printf("%-26s %8.1f%% %9d | %8.1f %8.1f %8.1f | %s\n",
                std::string(rf::info(row.material).name).c_str(), acc, flips,
                dsp::mean(snrs), *std::min_element(snrs.begin(), snrs.end()),
                *std::max_element(snrs.begin(), snrs.end()),
                row.paper_accuracy);
  }
  std::printf("\npaper shape: accuracy and SNR fall with material density;\n"
              "only the 8\" concrete wall drops below 100%% detection.\n");
  return 0;
}
