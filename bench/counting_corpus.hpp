// The §7.4 counting corpus shared by bench_fig_7_3 and bench_table_7_1:
// 80 experiments (20 per human count 0-3), 25 s each, 8 subjects, half in
// each conference room - exactly the paper's protocol. Seeds are fixed so
// both benches evaluate the identical corpus.
#pragma once

#include <vector>

#include "bench/bench_util.hpp"
#include "src/sim/protocols.hpp"

namespace wivi::bench {

struct CountingSample {
  int count = 0;
  bool room_a = true;   // which conference room hosted the experiment
  double variance = 0.0;
  double nulling_db = 0.0;
};

inline std::vector<CountingSample> run_counting_corpus(
    int trials_per_count = 20, double duration_sec = 25.0) {
  std::vector<CountingSample> corpus;
  for (int n = 0; n <= 3; ++n) {
    for (int t = 0; t < trials_per_count; ++t) {
      sim::CountingTrial trial;
      const bool room_a = (t % 2 == 0);
      trial.room = room_a ? sim::stata_conference_a() : sim::stata_conference_b();
      trial.num_humans = n;
      // Rotate through the 8-subject pool (different subset per trial, §7.3).
      trial.subjects = {t % 8, (t + 3) % 8, (t + 5) % 8};
      trial.duration_sec = duration_sec;
      trial.seed = trial_seed(74, n * 100 + t);
      const sim::CountingResult r = sim::run_counting_trial(trial);
      corpus.push_back({n, room_a, r.spatial_variance, r.effective_nulling_db});
    }
  }
  return corpus;
}

}  // namespace wivi::bench
