// Ablation: nulling vs the narrowband-Doppler baseline (§2.1).
//
// Related work "ignores the flash effect and tries to operate in presence
// of high interference caused by reflections off the wall ... the flash
// effect limits their detection capabilities". We reproduce the argument:
// the same Doppler motion detector is run on
//   (a) Wi-Vi's nulled, gain-boosted capture, and
//   (b) a no-nulling capture (zero precoder, gains stuck at base because
//       the flash would rail the ADC otherwise - §4.1.2),
// for a person behind a hollow wall and behind free space. Without nulling
// the detector only works without an obstruction - exactly the failure
// mode §2.1 ascribes to the prior narrowband systems.
#include "bench/bench_util.hpp"
#include "src/core/doppler.hpp"
#include "src/hw/usrp.hpp"
#include "src/sim/experiment.hpp"

using namespace wivi;

namespace {

struct Outcome {
  int detections = 0;
  double mean_ratio = 0.0;
};

Outcome run(bool nulled, rf::Material material, int trials) {
  Outcome out;
  const core::NarrowbandMotionDetector detector;
  for (int t = 0; t < trials; ++t) {
    Rng rng(bench::trial_seed(95, (nulled ? 1000 : 0) +
                                      static_cast<int>(material) * 100 + t));
    sim::Scene scene(sim::room_with_material(material),
                     sim::default_calibration(), rng);
    const sim::SubjectParams person = sim::subject(t % 8);
    scene.add_human(person,
                    sim::random_walk(scene.interior(), 20.0, 0.01,
                                     person.walk_speed_mps, rng),
                    rng());
    sim::ExperimentRunner::Config cfg;
    cfg.trace_duration_sec = 8.0;
    sim::TraceResult trace;
    if (nulled) {
      sim::ExperimentRunner runner(scene, cfg, rng.fork());
      trace = runner.run();
    } else {
      // No nulling: zero precoder; the receiver must keep base gains, so
      // its estimate floor is worse by the foregone TX+RX boost.
      cfg.estimate_noise_extra_db =
          hw::kPowerBoostDb + core::Nuller::Config{}.rx_boost_db;
      sim::ExperimentRunner runner(scene, cfg, rng.fork());
      const CVec zero_precoder(64, cdouble{0.0, 0.0});
      trace = runner.run_with_precoder(zero_precoder);
    }
    const auto decision = detector.detect(trace.h);
    out.detections += decision.motion;
    out.mean_ratio += decision.peak_over_floor / trials;
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation", "Nulling vs the narrowband Doppler baseline (§2.1)");
  const int trials = 6;
  std::printf("%-24s %-12s | %10s | %12s\n", "obstruction", "nulling",
              "detected", "peak/floor");
  for (const rf::Material m :
       {rf::Material::kFreeSpace, rf::Material::kHollowWall,
        rf::Material::kConcrete8in}) {
    for (const bool nulled : {true, false}) {
      const Outcome o = run(nulled, m, trials);
      std::printf("%-24s %-12s | %6d/%d   | %12.3f\n",
                  std::string(rf::info(m).name).c_str(),
                  nulled ? "Wi-Vi" : "none (baseline)", o.detections, trials,
                  o.mean_ratio);
    }
  }
  std::printf("\npaper (§2.1): narrowband Doppler radars without flash\n"
              "removal are demonstrated in free space or through low-\n"
              "attenuation walls only; Wi-Vi's nulling is what makes the\n"
              "same Doppler processing work through real walls.\n");
  return 0;
}
