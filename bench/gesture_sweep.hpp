// The §7.5 gesture distance sweep shared by bench_fig_7_4 and
// bench_fig_7_5: distances 1..9 m, 8 trials per distance rotating through
// the gesture subjects, one '0' and one '1' bit per trial. Distances above
// 6 m run in the larger conference room, <= 6 m alternate rooms (paper
// §7.5: "experiments with distances larger than 6 meters are conducted in
// the larger conference room").
#pragma once

#include <vector>

#include "bench/bench_util.hpp"
#include "src/sim/protocols.hpp"

namespace wivi::bench {

struct GestureSample {
  double distance_m = 0.0;
  sim::GestureResult result;
};

inline std::vector<GestureSample> run_gesture_sweep(int trials_per_distance = 8) {
  std::vector<GestureSample> sweep;
  for (int d = 1; d <= 9; ++d) {
    for (int t = 0; t < trials_per_distance; ++t) {
      sim::GestureTrial trial;
      trial.room = (d > 6 || t % 2 == 0) ? sim::stata_conference_b()
                                         : sim::stata_conference_a();
      trial.distance_m = d;
      trial.subject_index = t % 4;  // §7.2: 4 of the 8 subjects gestured
      trial.message = {core::Bit::kZero, core::Bit::kOne};
      trial.seed = trial_seed(75, d * 100 + t);
      sweep.push_back({static_cast<double>(d), sim::run_gesture_trial(trial)});
    }
  }
  return sweep;
}

}  // namespace wivi::bench
