// Memory-footprint figure generator: bytes-per-session, idle and active
// (committed as BENCH_mem.json; gated by scripts/check_mem.py in the
// mem-footprint CI job).
//
// ROADMAP item 3 / ISSUE 9: a wivi::Session must be cheap enough to run
// 10k+ of them, which means per-session memory has to be the *mutable
// workspace only* — the immutable plans (steering matrix, FFT twiddles,
// window tables, angle grids) live once in the shared plan registry. This
// bench measures the marginal heap cost of one more session directly: the
// global operator new/delete are replaced with byte-counting versions
// (glibc malloc_usable_size attributes the real block size, so container
// slack is counted honestly) and N same-config sessions are constructed
// (idle) and then fed a short stream (active).
//
// A warmup session runs first so process-wide state — the plan registry's
// artifacts and the per-thread MUSIC scratch — is built before measuring;
// that state is O(1) in the session count (reported separately as
// process_shared_bytes) and must not be attributed to the marginal
// session. Output is one JSON object on stdout:
//
//   { "samples_pushed": ...,  "process_shared_bytes": ...,
//     "idle_bytes_per_session":   {"1": ..., "100": ..., "1000": ...},
//     "active_bytes_per_session": {"1": ..., "100": ..., "1000": ...} }
#include <malloc.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "src/api/session.hpp"
#include "src/common/constants.hpp"
#include "src/common/random.hpp"

namespace {

// Not atomic: this bench is single-threaded.
long long g_live_bytes = 0;

void* count_alloc(void* p) {
  if (p != nullptr) g_live_bytes += static_cast<long long>(malloc_usable_size(p));
  return p;
}

void count_free(void* p) {
  if (p != nullptr) g_live_bytes -= static_cast<long long>(malloc_usable_size(p));
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = count_alloc(std::malloc(size))) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = count_alloc(std::malloc(size))) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = count_alloc(
          std::aligned_alloc(static_cast<std::size_t>(align), size)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = count_alloc(
          std::aligned_alloc(static_cast<std::size_t>(align), size)))
    return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { count_free(p); }
void operator delete[](void* p) noexcept { count_free(p); }
void operator delete(void* p, std::size_t) noexcept { count_free(p); }
void operator delete[](void* p, std::size_t) noexcept { count_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { count_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { count_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  count_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  count_free(p);
}

namespace wivi {
namespace {

// One mover at 0.6 m/s plus a static reflector — enough structure that the
// pipeline does real work; the values themselves do not matter here.
CVec make_trace(std::size_t n) {
  Rng rng(7);
  CVec h(n);
  const core::IsarConfig isar;
  const double step =
      kTwoPi * 2.0 * 0.6 * isar.sample_period_sec / isar.wavelength_m;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = step * static_cast<double>(i);
    h[i] = cdouble{std::cos(p), std::sin(p)} + cdouble{0.4, 0.1} +
           rng.complex_gaussian(1e-4);
  }
  return h;
}

api::PipelineSpec make_spec() {
  api::PipelineSpec spec;
  // The default image stage, with column events off so the bench measures
  // pipeline state, not an unpolled event queue.
  spec.image.emit_columns = false;
  return spec;
}

struct Figures {
  long long idle = 0;    // bytes per session, constructed but never fed
  long long active = 0;  // bytes per session after pushing the trace
};

Figures measure(std::size_t n, const CVec& trace) {
  const long long before = g_live_bytes;
  std::vector<std::unique_ptr<api::Session>> sessions;
  sessions.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    sessions.push_back(std::make_unique<api::Session>(make_spec()));
  Figures fig;
  fig.idle = (g_live_bytes - before) / static_cast<long long>(n);
  for (auto& s : sessions) s->push(trace);
  fig.active = (g_live_bytes - before) / static_cast<long long>(n);
  return fig;
}

int run() {
  // ~5 image columns per session: window 100 + 4 hops of 25.
  const CVec trace = make_trace(200);

  // Warmup: builds every shared plan and the per-thread scratch once.
  const long long at_start = g_live_bytes;
  {
    api::Session warm(make_spec());
    warm.push(trace);
    warm.finish();
  }
  const long long shared = g_live_bytes - at_start;

  const std::size_t counts[] = {1, 100, 1000};
  Figures figs[3];
  for (int i = 0; i < 3; ++i) figs[i] = measure(counts[i], trace);

  std::printf("{\n");
  std::printf("  \"samples_pushed\": %zu,\n", trace.size());
  std::printf("  \"process_shared_bytes\": %lld,\n", shared);
  std::printf("  \"idle_bytes_per_session\": {");
  for (int i = 0; i < 3; ++i)
    std::printf("%s\"%zu\": %lld", i ? ", " : "", counts[i], figs[i].idle);
  std::printf("},\n");
  std::printf("  \"active_bytes_per_session\": {");
  for (int i = 0; i < 3; ++i)
    std::printf("%s\"%zu\": %lld", i ? ", " : "", counts[i], figs[i].active);
  std::printf("}\n");
  std::printf("}\n");
  return 0;
}

}  // namespace
}  // namespace wivi

int main() { return wivi::run(); }
