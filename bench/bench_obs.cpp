// Observability-overhead microbenchmarks: the wivi::obs instrumentation is
// always-on by default, so its hot-path cost must stay within 1% of the
// uninstrumented pipeline (the DESIGN.md §10 overhead budget; BENCH_obs.json
// pins the ratio in CI).
//
// BM_SessionPushObsOff / BM_SessionPushObsOn / BM_SessionPushObsTrace run
// the identical workload — same synthetic trace, same chunking, a fresh
// session per iteration — differing only in the spec's ObsConfig, so their
// ratios are the timing and tracing overheads. The primitive costs
// (Counter::add, Histogram::record, LocalHistogram::record, now_ns) are
// measured separately in nanoseconds.
#include <benchmark/benchmark.h>

#include "src/api/session.hpp"
#include "src/obs/obs.hpp"
#include "src/sim/synthetic.hpp"

namespace wivi {
namespace {

constexpr std::size_t kTraceLen = 2000;  // ~77 columns at hop 25
constexpr std::size_t kChunk = 100;      // 4 columns per chunk

const CVec& trace() {
  static const CVec h = sim::synthetic_mover_trace(kTraceLen);
  return h;
}

void push_chunked(api::Session& session) {
  const CVec& h = trace();
  for (std::size_t pos = 0; pos < h.size(); pos += kChunk)
    benchmark::DoNotOptimize(
        session.push(CSpan(h).subspan(pos, std::min(kChunk, h.size() - pos))));
}

void run_session(benchmark::State& state, bool timing,
                 std::size_t trace_capacity) {
  for (auto _ : state) {
    api::PipelineSpec spec;
    spec.image.emit_columns = false;
    spec.obs.timing = timing;
    spec.obs.trace_capacity = trace_capacity;
    api::Session session(std::move(spec));
    push_chunked(session);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTraceLen / kChunk));
}

/// Baseline: stage timing disabled (spec.obs.timing = false).
void BM_SessionPushObsOff(benchmark::State& state) {
  run_session(state, /*timing=*/false, /*trace_capacity=*/0);
}
BENCHMARK(BM_SessionPushObsOff)->Unit(benchmark::kMillisecond);

/// The default: per-stage histograms filling, no trace ring. The ratio to
/// ObsOff is the instrumentation overhead (pinned <= 1%).
void BM_SessionPushObsOn(benchmark::State& state) {
  run_session(state, /*timing=*/true, /*trace_capacity=*/0);
}
BENCHMARK(BM_SessionPushObsOn)->Unit(benchmark::kMillisecond);

/// Timing plus a bounded trace ring retaining the most recent 4096 spans.
void BM_SessionPushObsTrace(benchmark::State& state) {
  run_session(state, /*timing=*/true, /*trace_capacity=*/4096);
}
BENCHMARK(BM_SessionPushObsTrace)->Unit(benchmark::kMillisecond);

/// One sharded-counter bump (private slot: relaxed load + store).
void BM_CounterAdd(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("bench_counter");
  for (auto _ : state) c.add();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

/// One concurrent-histogram record (bucket index + two relaxed RMWs).
void BM_HistogramRecord(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench_hist");
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG spread
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

/// One single-writer histogram record (plain array increment).
void BM_LocalHistogramRecord(benchmark::State& state) {
  obs::LocalHistogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_LocalHistogramRecord);

/// One clock read through the pluggable indirection (span start/stop cost).
void BM_NowNs(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(obs::now_ns());
}
BENCHMARK(BM_NowNs);

}  // namespace
}  // namespace wivi

BENCHMARK_MAIN();
