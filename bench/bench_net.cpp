// Network-ingress figure generator: frame-parse throughput, reassembly
// throughput, loopback UDP end-to-end ingest rate with frame-to-ring
// latency quantiles, and drop behavior under 2x overload (committed as
// BENCH_net.json; gated by scripts/check_net.py in the net-ingress CI
// job).
//
// ROADMAP item 5 / ISSUE 10: the framed ingress must sustain sensor-rate
// streams on one polling thread with bounded buffers — overload sheds
// load as *counted drops*, never as a stall or unbounded queue. The four
// measurements here pin that contract:
//
//   * parse:      parse_frame over pre-encoded frames (zero-copy path)
//   * reassembly: fragmented frames through a Demux (no sockets)
//   * loopback:   Sender -> real UDP socket -> Receiver -> sink, with the
//                 wivi_net_frame_to_ring_ns histogram's p50/p99
//   * overload:   frames blasted without interleaved polling until socket
//                 buffers overflow; the drop fraction is the kernel's,
//                 the conservation law must still hold on what arrived
//
// Output is one JSON object on stdout.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/net/frame.hpp"
#include "src/net/reassembler.hpp"
#include "src/net/receiver.hpp"
#include "src/net/sender.hpp"
#include "src/obs/snapshot.hpp"

namespace {

using namespace wivi;

/// Wall-clock seconds `fn` takes (steady clock; the benches report rates).
template <typename Fn>
double time_sec(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

CVec ramp_chunk(std::size_t n) {
  CVec c(n);
  for (std::size_t i = 0; i < n; ++i)
    c[i] = cdouble(static_cast<double>(i), -static_cast<double>(i));
  return c;
}

constexpr std::size_t kChunkSamples = 256;  // 4096 payload bytes
constexpr std::size_t kFragPayload = 1024;  // 4 fragments per chunk

double parse_throughput_mframes(std::uint64_t* bytes_per_frame) {
  const auto frames =
      net::chunk_to_frames(1, 0, ramp_chunk(kChunkSamples), kFragPayload);
  *bytes_per_frame = frames[0].size();
  const std::size_t iters = 200000;
  std::uint64_t accepted = 0;
  const double sec = time_sec([&] {
    net::FrameView v;
    for (std::size_t i = 0; i < iters; ++i)
      accepted += net::parse_frame(frames[i % frames.size()], v) ==
                  net::ParseStatus::kOk;
  });
  if (accepted != iters) return 0.0;  // impossible; defeats optimizer
  return static_cast<double>(iters) / sec / 1e6;
}

double reassembly_chunks_per_sec() {
  const std::size_t chunks = 20000;
  std::vector<std::vector<std::byte>> frames;
  for (std::size_t seq = 0; seq < chunks; ++seq)
    for (auto& f :
         net::chunk_to_frames(1, seq, ramp_chunk(kChunkSamples), kFragPayload))
      frames.push_back(std::move(f));
  std::uint64_t delivered = 0;
  const double sec = time_sec([&] {
    net::Demux demux({}, [&](std::uint32_t, std::uint64_t, CVec&&) {
      ++delivered;
      return true;
    });
    net::FrameView v;
    for (const auto& f : frames) {
      if (net::parse_frame(f, v) == net::ParseStatus::kOk) demux.feed(v);
    }
    demux.flush();
  });
  return delivered == chunks ? static_cast<double>(chunks) / sec : 0.0;
}

struct LoopbackResult {
  double chunks_per_sec = 0;
  std::uint64_t frame_to_ring_p50_ns = 0;
  std::uint64_t frame_to_ring_p99_ns = 0;
};

LoopbackResult loopback_ingest() {
  LoopbackResult out;
  std::uint64_t delivered = 0;
  net::ReceiverConfig rc;
  rc.enable_tcp = false;
  net::Receiver rx(rc, [&](std::uint32_t, std::uint64_t, CVec&&) {
    ++delivered;
    return true;
  });
  net::Sender::Config sc;
  sc.port = rx.udp_port();
  sc.max_payload = kFragPayload;
  net::Sender sender(sc);

  const std::size_t chunks = 20000;
  const CVec chunk = ramp_chunk(kChunkSamples);
  const double sec = time_sec([&] {
    for (std::size_t i = 0; i < chunks; ++i) {
      sender.send_chunk(1, chunk);
      rx.poll_once(0);  // interleaved drain: bounded socket buffers
    }
    int idle = 0;
    while (idle < 3) idle = rx.poll_once(10) == 0 ? idle + 1 : 0;
    rx.flush();
  });
  out.chunks_per_sec = static_cast<double>(delivered) / sec;

  const obs::Snapshot snap = rx.metrics().snapshot();
  for (const auto& h : snap.histograms) {
    if (h.name == "wivi_net_frame_to_ring_ns") {
      out.frame_to_ring_p50_ns = h.hist.p50;
      out.frame_to_ring_p99_ns = h.hist.p99;
    }
  }
  return out;
}

struct OverloadResult {
  double drop_fraction = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_accepted = 0;
  bool conservation_held = false;
};

OverloadResult overload_2x() {
  OverloadResult out;
  std::uint64_t delivered = 0;
  net::ReceiverConfig rc;
  rc.enable_tcp = false;
  net::Receiver rx(rc, [&](std::uint32_t, std::uint64_t, CVec&&) {
    ++delivered;
    return true;
  });
  net::Sender::Config sc;
  sc.port = rx.udp_port();
  sc.max_payload = kFragPayload;
  net::Sender sender(sc);

  // Overload: offer 2x the load the receiver drains. Every turn sends two
  // chunks but polls only every *other* turn, so frames land twice as
  // fast as the polling thread consumes them; once the bounded socket
  // buffer fills, the kernel sheds the excess as counted datagram drops
  // (frames_sent - frames_accepted) while the receiver keeps delivering.
  const std::size_t chunks = 20000;
  const CVec chunk = ramp_chunk(kChunkSamples);
  for (std::size_t i = 0; i < chunks; ++i) {
    sender.send_chunk(1, chunk);
    sender.send_chunk(1, chunk);
    if (i % 64 >= 32) rx.poll_once(0);  // half-duty drain: 2x overload
  }
  int idle = 0;
  while (idle < 3) idle = rx.poll_once(10) == 0 ? idle + 1 : 0;
  rx.flush();

  out.frames_sent = sender.frames_sent();
  out.frames_accepted = rx.wire_stats().frames_accepted;
  out.drop_fraction =
      1.0 - static_cast<double>(out.frames_accepted) /
                static_cast<double>(out.frames_sent);
  const auto s = rx.demux().stats();
  out.conservation_held =
      s.frames_in == s.frames_delivered + s.frames_dup + s.frames_stale +
                         s.frames_evicted + s.frames_decode_failed +
                         s.frames_sink_dropped + s.frames_control +
                         s.frames_in_flight &&
      s.frames_in_flight == 0 && delivered == s.chunks_delivered -
                                                  s.sink_dropped_chunks;
  return out;
}

}  // namespace

int main() {
  std::uint64_t bytes_per_frame = 0;
  const double parse_mframes = parse_throughput_mframes(&bytes_per_frame);
  const double reasm_chunks = reassembly_chunks_per_sec();
  const LoopbackResult loop = loopback_ingest();
  const OverloadResult over = overload_2x();

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_net\",\n");
  std::printf("  \"chunk_samples\": %zu,\n", kChunkSamples);
  std::printf("  \"frag_payload_bytes\": %zu,\n", kFragPayload);
  std::printf("  \"frame_bytes\": %llu,\n",
              static_cast<unsigned long long>(bytes_per_frame));
  std::printf("  \"parse_mframes_per_sec\": %.2f,\n", parse_mframes);
  std::printf("  \"reassembly_chunks_per_sec\": %.0f,\n", reasm_chunks);
  std::printf("  \"loopback_chunks_per_sec\": %.0f,\n", loop.chunks_per_sec);
  std::printf("  \"frame_to_ring_p50_ns\": %llu,\n",
              static_cast<unsigned long long>(loop.frame_to_ring_p50_ns));
  std::printf("  \"frame_to_ring_p99_ns\": %llu,\n",
              static_cast<unsigned long long>(loop.frame_to_ring_p99_ns));
  std::printf("  \"overload_frames_sent\": %llu,\n",
              static_cast<unsigned long long>(over.frames_sent));
  std::printf("  \"overload_frames_accepted\": %llu,\n",
              static_cast<unsigned long long>(over.frames_accepted));
  std::printf("  \"overload_drop_fraction\": %.4f,\n", over.drop_fraction);
  std::printf("  \"overload_conservation_held\": %s\n",
              over.conservation_held ? "true" : "false");
  std::printf("}\n");
  return 0;
}
