// Fig. 7-4: accuracy of gesture decoding as a function of distance from
// the wall. Paper: 100% up to 5 m, 93.75% at 6-7 m, 75% at 8 m, 0% at 9 m
// (the 3 dB SNR gate produces the sharp cutoff), and failures are always
// erasures - Wi-Vi never mistakes a '0' for a '1' or vice versa.
#include "bench/gesture_sweep.hpp"

using namespace wivi;

int main() {
  bench::banner("Fig. 7-4", "Gesture decoding accuracy vs distance");
  std::printf("(9 distances x 8 trials x 2 bits - takes ~a minute)\n\n");

  const auto sweep = bench::run_gesture_sweep();

  std::printf("%10s %10s %10s %10s %10s\n", "dist [m]", "bits sent",
              "correct", "erased", "flipped");
  int total_flips = 0;
  for (int d = 1; d <= 9; ++d) {
    int sent = 0;
    int correct = 0;
    int erased = 0;
    int flipped = 0;
    for (const auto& s : sweep) {
      if (static_cast<int>(s.distance_m) != d) continue;
      sent += 2;
      correct += s.result.correct;
      erased += s.result.erased;
      flipped += s.result.flipped;
    }
    total_flips += flipped;
    std::printf("%10d %10d %9.1f%% %9.1f%% %10d\n", d, sent,
                100.0 * correct / sent, 100.0 * erased / sent, flipped);
  }

  bench::section("summary");
  std::printf("bit flips across the whole sweep: %d\n", total_flips);
  std::printf("paper:  100%% at 1-5 m, 93.75%% at 6-7 m, 75%% at 8 m, 0%% at\n"
              "        9 m; sharp cutoff between 8 and 9 m from the 3 dB SNR\n"
              "        decode gate; errors are erasures, never bit flips.\n");
  return 0;
}
