// Fig. 7-3: CDF of the spatial variance (Eq. 5.5) for 0, 1, 2 and 3 moving
// humans over the 80-experiment §7.4 corpus. The paper's observations:
// variance increases with the human count, and the CDF separation shrinks
// as the count grows (congestion limits freedom of movement).
#include "bench/counting_corpus.hpp"

using namespace wivi;

int main() {
  bench::banner("Fig. 7-3", "CDF of spatial variance vs number of moving humans");
  std::printf("(80 experiments: 20 per count, 25 s each, two rooms - this "
              "takes a couple of minutes)\n");

  const auto corpus = bench::run_counting_corpus();

  RVec per_count[4];
  for (const auto& s : corpus)
    per_count[s.count].push_back(s.variance / 1e6);  // "tens of millions" axis

  for (int n = 0; n <= 3; ++n) {
    bench::section((std::to_string(n) + " human(s)").c_str());
    bench::print_cdf("spatial variance [millions]", per_count[n], 9);
  }

  bench::section("separation between successive counts (medians)");
  double prev = 0.0;
  for (int n = 0; n <= 3; ++n) {
    const double med = dsp::median(per_count[n]);
    if (n > 0)
      std::printf("median(%d) - median(%d) = %+.3fM\n", n, n - 1, med - prev);
    prev = med;
  }
  std::printf("\npaper: variance increases with the count; the gap between\n"
              "       successive CDFs shrinks as the room gets more crowded\n"
              "       (x-axis 'in tens of millions').\n");
  return 0;
}
