// Fig. 5-2: Wi-Vi tracks a single person's motion. One person moves in a
// closed conference room; the output is A'[theta, n] - a single curved line
// whose angle varies with the person's radial motion, plus the DC line.
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/core/tracker.hpp"
#include "src/sim/protocols.hpp"

using namespace wivi;

int main() {
  bench::banner("Fig. 5-2", "Tracking a single person behind a closed wall");

  sim::CountingTrial trial;
  trial.room = sim::stata_conference_a();
  trial.num_humans = 1;
  trial.subjects = {3};
  trial.duration_sec = 7.0;
  trial.seed = bench::trial_seed(52, 0);
  trial.image_threads = 0;  // offline figure build: shard columns over all cores
  const sim::CountingResult r = sim::run_counting_trial(trial);

  bench::section("A'[theta, n] heat map (smoothed MUSIC)");
  std::printf("%s", core::render_ascii(r.image).c_str());

  bench::section("dominant non-DC angle vs time (the curved line)");
  const core::MotionTracker tracker;
  const RVec trace = tracker.dominant_angle_trace(r.image);
  std::printf("%8s  %10s\n", "time[s]", "theta[deg]");
  for (std::size_t i = 0; i < trace.size(); i += 4) {
    if (std::isnan(trace[i]))
      std::printf("%8.2f  %10s\n", r.image.times_sec[i], "-");
    else
      std::printf("%8.2f  %10.0f\n", r.image.times_sec[i], trace[i]);
  }

  int sign_changes = 0;
  double prev = 0.0;
  for (double a : trace) {
    if (std::isnan(a)) continue;
    if (prev != 0.0 && a * prev < 0.0) ++sign_changes;
    prev = a;
  }
  bench::section("summary");
  std::printf("angle sign changes (approach <-> recede turns): %d\n", sign_changes);
  std::printf("paper: one curved line crossing zero as the person passes the\n"
              "       device and turns; a straight DC line at theta = 0.\n");
  return 0;
}
