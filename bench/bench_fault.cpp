// Fault-path overhead microbenchmarks: the robustness layer (DESIGN.md §9)
// must be ~free on the healthy path. Two pins:
//
//  * BM_SessionPushGuardOff vs BM_SessionPushGuardOn run the identical
//    push workload with the InputGuard's finite scan off and on — their
//    ratio is the cost of validating every chunk at the trust boundary,
//    pinned <= 1% of pipeline cost (the scan is one predictable pass over
//    data the FFT stage is about to touch anyway).
//  * BM_ChunkedTraceNext vs BM_FaultyFeederPassThrough replay the same
//    trace raw and through a zero-fault FaultyFeeder — the feeder wrapper
//    must cost nothing measurable next to actual signal processing, so
//    chaos-mode runs measure the faults, not the harness.
//
// CI runs this as a smoke check; BENCH_fault.json holds a reference run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "src/api/session.hpp"
#include "src/fault/fault.hpp"
#include "src/sim/feeder.hpp"
#include "src/sim/synthetic.hpp"

namespace wivi {
namespace {

constexpr std::size_t kTraceLen = 2000;  // ~77 columns at hop 25
constexpr std::size_t kChunk = 100;      // 4 columns per chunk

const CVec& trace() {
  static const CVec h = sim::synthetic_mover_trace(kTraceLen);
  return h;
}

void push_chunked(api::Session& session) {
  const CVec& h = trace();
  for (std::size_t pos = 0; pos < h.size(); pos += kChunk)
    session.push(CSpan(h).subspan(pos, std::min(kChunk, h.size() - pos)));
}

api::PipelineSpec image_only_spec() {
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  return spec;
}

/// Baseline: ingress validation reduced to the structural checks (no
/// finite scan — the pre-validated-replay configuration).
void BM_SessionPushGuardOff(benchmark::State& state) {
  for (auto _ : state) {
    api::PipelineSpec spec = image_only_spec();
    spec.guard.check_finite = false;
    api::Session session(std::move(spec));
    push_chunked(session);
    benchmark::DoNotOptimize(session.columns_seen());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTraceLen / kChunk));
}
BENCHMARK(BM_SessionPushGuardOff)->Unit(benchmark::kMillisecond);

/// The default trust boundary: every chunk scanned for NaN/Inf plus the
/// structural checks. The delta against GuardOff is the fault-path
/// overhead on the healthy path — pinned <= 1%.
void BM_SessionPushGuardOn(benchmark::State& state) {
  for (auto _ : state) {
    api::Session session(image_only_spec());
    push_chunked(session);
    benchmark::DoNotOptimize(session.columns_seen());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTraceLen / kChunk));
}
BENCHMARK(BM_SessionPushGuardOn)->Unit(benchmark::kMillisecond);

sim::ChunkedTrace make_feed() {
  sim::TraceResult tr;
  tr.h = trace();
  tr.sample_rate_hz = 312.5;
  return sim::ChunkedTrace(std::move(tr), kChunk);
}

/// Baseline: replaying a recorded trace chunk by chunk, no fault layer.
void BM_ChunkedTraceNext(benchmark::State& state) {
  sim::ChunkedTrace feed = make_feed();
  CVec chunk;
  for (auto _ : state) {
    feed.rewind();
    while (feed.next(chunk)) benchmark::DoNotOptimize(chunk.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTraceLen / kChunk));
}
BENCHMARK(BM_ChunkedTraceNext);

/// The same replay through a zero-fault FaultyFeeder: the chaos harness's
/// own overhead (per-chunk hash draws + the delivery queue).
void BM_FaultyFeederPassThrough(benchmark::State& state) {
  fault::FaultyFeeder feeder(make_feed(), FaultSpec{});
  CVec chunk;
  for (auto _ : state) {
    feeder.rewind();
    while (feeder.next(chunk) == fault::FaultAction::kDeliver)
      benchmark::DoNotOptimize(chunk.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTraceLen / kChunk));
}
BENCHMARK(BM_FaultyFeederPassThrough);

/// A fully loaded fault plan, for scale: even drawing every fault kind
/// per chunk stays trivial next to one MUSIC column.
void BM_FaultyFeederAllFaults(benchmark::State& state) {
  FaultSpec spec;
  spec.drop_prob = 0.05;
  spec.duplicate_prob = 0.05;
  spec.reorder_prob = 0.05;
  spec.truncate_prob = 0.05;
  spec.corrupt_prob = 0.05;
  spec.gap_prob = 0.05;
  fault::FaultyFeeder feeder(make_feed(), spec);
  CVec chunk;
  for (auto _ : state) {
    feeder.rewind();
    for (;;) {
      const fault::FaultAction a = feeder.next(chunk);
      if (a == fault::FaultAction::kEnd) break;
      if (a == fault::FaultAction::kDeliver)
        benchmark::DoNotOptimize(chunk.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTraceLen / kChunk));
}
BENCHMARK(BM_FaultyFeederAllFaults);

}  // namespace
}  // namespace wivi

BENCHMARK_MAIN();
