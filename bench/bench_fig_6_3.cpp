// Fig. 6-3: gesture decoding. (a) the matched-filter output looks like a
// BPSK waveform; (b) the peak detector maps peaks/troughs to +1/-1 symbols,
// and the pair sequence (+1,-1) decodes to bit '0', (-1,+1) to bit '1'.
#include "bench/bench_util.hpp"
#include "src/sim/protocols.hpp"

using namespace wivi;

int main() {
  bench::banner("Fig. 6-3", "Matched filter output and decoded bits");

  sim::GestureTrial trial;
  trial.room = sim::stata_conference_a();
  trial.distance_m = 3.0;
  trial.subject_index = 1;
  trial.message = {core::Bit::kZero, core::Bit::kOne};
  trial.seed = bench::trial_seed(61, 0);  // the same trace as bench_fig_6_1
  const sim::GestureResult r = sim::run_gesture_trial(trial);

  bench::section("(a) matched filter output (sum of both triangle filters)");
  const RVec& out = r.decoded.matched_output;
  double peak = 1e-9;
  for (double v : out) peak = std::max(peak, std::abs(v));
  for (std::size_t i = 0; i < out.size(); i += 2) {
    const int bar = static_cast<int>(std::round(out[i] / peak * 24.0));
    std::string line(49, ' ');
    line[24] = '|';
    if (bar > 0) for (int b = 1; b <= bar; ++b) line[24 + static_cast<std::size_t>(b)] = '#';
    if (bar < 0) for (int b = -1; b >= bar; --b) line[24 + static_cast<std::size_t>(b)] = '#';
    std::printf("%6.2fs %s\n", static_cast<double>(i) * 0.08, line.c_str());
  }
  std::printf("noise sigma (robust): %.3f -> 3 dB gate at %.3f\n",
              r.decoded.noise_sigma, r.decoded.noise_sigma * 1.413);

  bench::section("(b) mapped symbols and decoded bits");
  std::printf("%8s  %7s  %9s\n", "time[s]", "symbol", "SNR[dB]");
  for (const auto& s : r.decoded.symbols)
    std::printf("%8.2f  %+7d  %9.1f\n", s.time_sec, s.sign, s.snr_db);
  std::printf("\nbit decisions:\n");
  for (const auto& b : r.decoded.bits)
    std::printf("  t=%6.2fs  bit '%d'  (SNR %.1f dB)\n", b.time_sec,
                static_cast<int>(b.value), b.snr_db);
  std::printf("\npaper: sequence (+1,-1) -> bit '0', (-1,+1) -> bit '1';\n"
              "       this trace decodes to '0','1'.\n");
  return 0;
}
