// Table 4.1: one-way RF attenuation in common building materials at
// 2.4 GHz, plus a validation pass: the channel model's measured two-way
// echo loss through each simulated wall must equal twice the table value.
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/common/db.hpp"
#include "src/rf/channel.hpp"
#include "src/rf/materials.hpp"

using namespace wivi;

namespace {

/// Echo power of a reference scatterer 3 m behind a wall of material m,
/// relative to the same scatterer with no wall.
double measured_two_way_loss_db(rf::Material m) {
  const rf::Vec2 boresight{0.0, 1.0};
  // Isolate the echo by subtracting the direct TX->RX coupling measured on
  // an otherwise identical scene without the scatterer.
  auto bare = [&](bool with_wall) {
    rf::ChannelModel ch(rf::Antenna::directional({-0.5, 0}, boresight, 6.0),
                        rf::Antenna::directional({+0.5, 0}, boresight, 6.0),
                        rf::Antenna::directional({0, 0}, boresight, 6.0));
    if (with_wall) ch.add_wall({{-10, 1}, {10, 1}, m});
    return ch;
  };
  rf::ChannelModel walled_bare = bare(true);
  rf::ChannelModel free_bare = bare(false);
  const rf::Vec2 target{0.0, 4.0};
  rf::ChannelModel walled = bare(true);
  walled.add_static_scatterer({target, 1.0});
  rf::ChannelModel open = bare(false);
  open.add_static_scatterer({target, 1.0});
  const double echo_walled =
      norm2(walled.static_response(0) - walled_bare.static_response(0));
  const double echo_free =
      norm2(open.static_response(0) - free_bare.static_response(0));
  return to_db(echo_free / echo_walled);
}

}  // namespace

int main() {
  bench::banner("Table 4.1", "One-way RF attenuation at 2.4 GHz per material");
  std::printf("%-28s %12s %14s %18s\n", "Building material", "one-way dB",
              "two-way dB", "model measured dB");
  for (const auto& row : rf::material_table()) {
    const double measured = measured_two_way_loss_db(row.material);
    std::printf("%-28s %12.1f %14.1f %18.2f\n", std::string(row.name).c_str(),
                row.one_way_attenuation_db,
                rf::two_way_attenuation_db(row.material), measured);
  }
  std::printf("\npaper: Glass 3 / Solid Wood Door 1.75\" 6 / Hollow Wall 6\" 9 /"
              "\n       Concrete 18\" 18 / Reinforced Concrete 40  (one-way dB)\n");
  std::printf("note : 8\" concrete (13 dB) is our interpolation for the\n"
              "       Fairchild wall used in Fig. 7-6 (see DESIGN.md).\n");
  return 0;
}
