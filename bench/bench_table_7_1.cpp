// Table 7.1: accuracy of automatically detecting the number of moving
// humans. Protocol exactly as §7.4: learn thresholds on the experiments
// from one conference room, test on the other room, then cross-validate
// (swap train/test) and report the pooled confusion matrix.
#include "bench/counting_corpus.hpp"
#include "src/core/counting.hpp"

using namespace wivi;

int main() {
  bench::banner("Table 7.1", "Confusion matrix of automatic human counting");
  std::printf("(80 experiments: 20 per count, 25 s each - this takes a couple "
              "of minutes)\n\n");

  const auto corpus = bench::run_counting_corpus();

  // Cross-validation over the two rooms (train on one, test on the other).
  int confusion[4][4] = {};
  for (const bool train_room_a : {true, false}) {
    std::vector<core::VarianceClassifier::LabeledVariance> train;
    for (const auto& s : corpus)
      if (s.room_a == train_room_a) train.push_back({s.count, s.variance});
    core::VarianceClassifier clf;
    clf.train(train);
    for (const auto& s : corpus) {
      if (s.room_a == train_room_a) continue;
      ++confusion[s.count][clf.classify(s.variance)];
    }
  }

  std::printf("%8s | %6s %6s %6s %6s\n", "actual", "det 0", "det 1", "det 2",
              "det 3");
  std::printf("---------+----------------------------\n");
  for (int a = 0; a <= 3; ++a) {
    int row_total = 0;
    for (int d = 0; d <= 3; ++d) row_total += confusion[a][d];
    std::printf("%8d |", a);
    for (int d = 0; d <= 3; ++d)
      std::printf(" %5.0f%%", 100.0 * confusion[a][d] / std::max(row_total, 1));
    std::printf("\n");
  }

  std::printf("\npaper:   0 -> 100%%   1 -> 100%%   2 -> 85%% (15%% as 3)\n"
              "         3 -> 90%% (10%% as 2); no confusion beyond adjacent\n"
              "         counts. Our simulated testbed reproduces the perfect\n"
              "         0/1 rows; the 2/3 rows degrade further than the\n"
              "         paper's (see EXPERIMENTS.md for the analysis).\n");
  return 0;
}
